"""Crash-safe filesystem writes: one atomic-commit path for artifacts.

Every durable artifact this codebase produces — PAF output, metrics
manifests, quarantine sidecars, ``BENCH_*.json`` results — used to be
an ``open(path, "w")`` away from a torn file: a crash (or ``kill -9``,
or ENOSPC) mid-write leaves a half-written JSON document or a PAF file
that ends mid-line, and a consumer cannot tell truncation from
completion. This module is the single choke point that fixes that:

:func:`atomic_write`
    write-to-temp + flush + ``fsync`` + ``os.replace`` in the target's
    directory, so the path either holds the old content or the complete
    new content — never a prefix.
:func:`atomic_output`
    the streaming variant: a context manager yielding a real file
    handle (write as much as you like, e.g. a multi-GB PAF stream);
    the rename happens only on clean exit, and the temp file is removed
    on error, so the target is never torn.

Crash-consistency hooks: both paths call
:func:`repro.testing.chaos.chaos_point` at their write/fsync/rename
steps, which is how the chaos harness injects ``kill -9``, ENOSPC, and
torn writes exactly there. With the chaos env unset the hook is one
module-attribute check.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from contextlib import contextmanager
from typing import Iterator, Union

__all__ = [
    "atomic_write",
    "atomic_write_json",
    "atomic_output",
    "fsync_path",
]


def _chaos(point: str, fh=None, payload=None) -> None:
    """The chaos-injection hook; free when no chaos spec is armed."""
    from ..testing import chaos

    if chaos.ARMED:
        chaos.chaos_point(point, fh=fh, payload=payload)


def _fsync_dir(path: str) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def fsync_path(path: str) -> None:
    """fsync an existing file by path (used after in-place truncates)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(
    path: Union[str, os.PathLike],
    data: Union[str, bytes],
    fsync: bool = True,
) -> int:
    """Write ``data`` to ``path`` atomically; returns bytes written.

    The temp file lives in the target's directory (same filesystem, so
    ``os.replace`` is atomic), is flushed and fsynced before the
    rename, and is cleaned up if anything raises — a crash at any point
    leaves either the previous content or the full new content at
    ``path``, plus at worst a stray ``.tmp`` neighbor.
    """
    path = os.fspath(path)
    payload = data.encode("utf-8") if isinstance(data, str) else data
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            _chaos("atomic.write", fh=fh, payload=payload)
            fh.write(payload)
            fh.flush()
            if fsync:
                _chaos("atomic.fsync", fh=fh)
                os.fsync(fh.fileno())
        _chaos("atomic.rename")
        os.replace(tmp, path)
        if fsync:
            _fsync_dir(path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(payload)


def atomic_write_json(
    path: Union[str, os.PathLike],
    obj,
    fsync: bool = True,
    **dump_kwargs,
) -> int:
    """JSON-serialize ``obj`` and :func:`atomic_write` it (+ newline)."""
    dump_kwargs.setdefault("indent", 2)
    return atomic_write(
        path, json.dumps(obj, **dump_kwargs) + "\n", fsync=fsync
    )


@contextmanager
def atomic_output(
    path: Union[str, os.PathLike], fsync: bool = True
) -> Iterator[io.TextIOBase]:
    """A text file handle whose content reaches ``path`` only on success.

    Stream any amount of output into the yielded handle; on clean exit
    it is flushed, fsynced, and renamed over ``path`` in one atomic
    step. If the block raises, the temp file is deleted and ``path`` is
    untouched — so a failed run never leaves a truncated artifact
    masquerading as a complete one.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    fh = os.fdopen(fd, "w", encoding="utf-8", newline="")
    try:
        yield fh
        fh.flush()
        if fsync:
            _chaos("atomic.fsync", fh=fh)
            os.fsync(fh.fileno())
        fh.close()
        _chaos("atomic.rename")
        os.replace(tmp, path)
        if fsync:
            _fsync_dir(path)
    except BaseException:
        try:
            fh.close()
        except OSError:
            pass
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
