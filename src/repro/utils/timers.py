"""Wall-clock timing helpers used by the profiling layer and benchmarks.

The aligner's per-stage breakdown (paper Table 2 / Figure 11) is produced
by :class:`StageTimer`, which accumulates seconds per named stage and can
render itself as the paper's percentage table.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


@dataclass
class Timer:
    """A resumable stopwatch accumulating elapsed wall-clock seconds."""

    elapsed: float = 0.0
    _started: float | None = None

    def start(self) -> "Timer":
        if self._started is not None:
            raise RuntimeError("timer already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("timer not running")
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._started is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class StageTimer:
    """Accumulates elapsed time under named stages.

    Stages preserve first-use order so breakdown tables print in pipeline
    order (load index, load query, seed & chain, align, output).
    """

    stages: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + (
                time.perf_counter() - t0
            )

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` to ``name`` without running anything."""
        if seconds < 0:
            raise ValueError(f"negative duration for stage {name!r}: {seconds}")
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def breakdown(self) -> List[Tuple[str, float, float]]:
        """Return ``(stage, seconds, percent)`` rows in first-use order.

        A zero-total (empty or all-zero) timer reports 0.00% per stage —
        a run that did nothing must not render as ``Total 100.00%``.
        """
        total = self.total
        if total <= 0.0:
            return [(k, v, 0.0) for k, v in self.stages.items()]
        return [(k, v, 100.0 * v / total) for k, v in self.stages.items()]

    def render(self, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
        width = max([len(k) for k in self.stages] + [10])
        lines.append(f"{'Stage':<{width}}  {'Time (s)':>10}  {'%':>6}")
        for name, sec, pct in self.breakdown():
            lines.append(f"{name:<{width}}  {sec:>10.3f}  {pct:>6.2f}")
        total_pct = 100.0 if self.total > 0.0 else 0.0
        lines.append(
            f"{'Total':<{width}}  {self.total:>10.3f}  {total_pct:>6.2f}"
        )
        return "\n".join(lines)


@contextmanager
def timed() -> Iterator[Timer]:
    """Context manager yielding a :class:`Timer` measuring the block."""
    t = Timer()
    t.start()
    try:
        yield t
    finally:
        if t.running:
            t.stop()
