"""Deterministic random-number plumbing.

All stochastic components (genome generation, read simulation, workload
synthesis) accept either a seed or a ``numpy.random.Generator`` so every
experiment in EXPERIMENTS.md is exactly reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so callers can
    thread one RNG through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Used by multi-worker simulation so each worker gets a decorrelated
    stream while the whole run stays reproducible from one seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]
