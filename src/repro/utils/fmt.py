"""Human-readable formatting for sizes, counts, and rates."""

from __future__ import annotations

_BYTE_UNITS = ["B", "KB", "MB", "GB", "TB", "PB"]
_SI_UNITS = ["", "K", "M", "G", "T", "P"]


def human_bytes(n: float) -> str:
    """Format a byte count: ``human_bytes(5362*2**20) == '5.24 GB'``."""
    n = float(n)
    neg = n < 0
    n = abs(n)
    for unit in _BYTE_UNITS:
        if n < 1024.0 or unit == _BYTE_UNITS[-1]:
            break
        n /= 1024.0
    s = f"{n:.2f}".rstrip("0").rstrip(".")
    return f"{'-' if neg else ''}{s} {unit}"


def si(n: float, suffix: str = "") -> str:
    """Format with SI multipliers: ``si(4985012420) == '4.99G'``."""
    n = float(n)
    neg = n < 0
    n = abs(n)
    for unit in _SI_UNITS:
        if n < 1000.0 or unit == _SI_UNITS[-1]:
            break
        n /= 1000.0
    s = f"{n:.2f}".rstrip("0").rstrip(".")
    return f"{'-' if neg else ''}{s}{unit}{suffix}"


def human_count(n: int) -> str:
    """Format an integer with thousands separators."""
    return f"{int(n):,}"
