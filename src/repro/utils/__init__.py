"""Small shared utilities: timers, RNG plumbing, size formatting, atomic IO."""

from .timers import StageTimer, Timer, timed
from .rng import as_rng, spawn_rngs
from .fmt import human_bytes, human_count, si
from .fsio import atomic_output, atomic_write, atomic_write_json, fsync_path

__all__ = [
    "StageTimer",
    "Timer",
    "timed",
    "as_rng",
    "spawn_rngs",
    "human_bytes",
    "human_count",
    "si",
    "atomic_write",
    "atomic_write_json",
    "atomic_output",
    "fsync_path",
]
