"""Small shared utilities: timers, RNG plumbing, size formatting."""

from .timers import StageTimer, Timer, timed
from .rng import as_rng, spawn_rngs
from .fmt import human_bytes, human_count, si

__all__ = [
    "StageTimer",
    "Timer",
    "timed",
    "as_rng",
    "spawn_rngs",
    "human_bytes",
    "human_count",
    "si",
]
