"""Deterministic fault injection keyed by read name.

The robustness suite and the CI chaos smoke need *reproducible*
failures: a specific read must fail in a specific way on a specific
attempt, on every backend, in the parent process or a pool worker,
before and after a pool respawn. That rules out random fault points
and shared mutable state — instead each :class:`FaultSpec` decides
purely from ``(read name, attempt number)``, both of which every
backend already threads through
:func:`repro.runtime.faults.map_one_read`. The injector is a frozen
value object, so it pickles into process-pool initializers unchanged.

Fault kinds:

``parse``
    raises :class:`~repro.errors.ParseError` (a malformed record
    surfacing mid-pipeline) on every attempt — retries cannot save it.
``error``
    raises ``RuntimeError`` on every attempt.
``flaky``
    fails the first ``times`` attempts (default 1) then succeeds —
    proves the retry path actually recovers work.
``slow``
    sleeps ``delay_s`` on the first ``times`` attempts (default 1) —
    trips the watchdog (``read_timeout``) deterministically.
``crash``
    calls ``os._exit`` *when running inside a process-pool worker*
    (the ``MANYMAP_POOL_WORKER`` env var set by the pool initializer),
    killing the worker mid-chunk; outside a pool worker it degrades to
    a ``RuntimeError`` so the serial/thread backends (and pytest
    itself) survive the same spec file.
``disk_full``
    raises ``OSError(ENOSPC)`` at *output-write* time for the named
    read (the :meth:`FaultInjector.on_write` hook, called by the
    ``map_file`` output sink) — the run dies mid-write exactly like a
    full disk, which is what the atomic-write and journal layers must
    survive. Resume after clearing the spec (disk freed) completes.
``torn_write``
    writes *half* of the read's output payload to the sink, flushes
    it, then SIGKILLs the process — a torn write frozen onto disk at
    a byte position no clean shutdown would ever produce. The journal
    CRC recovery must detect and truncate it.

``disk_full`` / ``torn_write`` fire on the first ``times`` writes of
the read *per process* (default: every write), counted in module
state — a resumed process starts fresh, like a real machine after the
incident.
"""

from __future__ import annotations

import errno
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..errors import ParseError, SchedulerError

__all__ = ["FaultSpec", "FaultInjector", "load_faults", "POOL_WORKER_ENV"]

#: set (to "1") in every process-pool worker by the pool initializer;
#: ``crash`` faults only hard-kill when it is present.
POOL_WORKER_ENV = "MANYMAP_POOL_WORKER"

KINDS = (
    "parse", "error", "flaky", "slow", "crash", "disk_full", "torn_write",
)

#: write-time kinds, consulted by :meth:`FaultInjector.on_write`
#: (the map_file output sink), not by per-read mapping attempts.
WRITE_KINDS = ("disk_full", "torn_write")

#: default attempt budget per kind; ``None`` means every attempt.
_DEFAULT_TIMES: Dict[str, Optional[int]] = {
    "parse": None,
    "error": None,
    "crash": None,
    "flaky": 1,
    "slow": 1,
    "disk_full": None,
    "torn_write": None,
}

#: per-process write-fault occurrence counts (read name -> hits);
#: deliberately module-level so the frozen injector stays picklable.
_WRITE_HITS: Dict[str, int] = {}


@dataclass(frozen=True)
class FaultSpec:
    """One injected failure: which read, how, and for how many attempts."""

    read: str
    kind: str
    times: Optional[int] = None
    delay_s: float = 0.05
    message: str = ""

    def validated(self) -> "FaultSpec":
        if self.kind not in KINDS:
            raise SchedulerError(
                f"fault kind must be one of {KINDS}: {self.kind!r}"
            )
        return self


@dataclass(frozen=True)
class FaultInjector:
    """Callable hook wired into ``FaultPolicy.injector``.

    Picklable and stateless: the decision depends only on the read
    name and the attempt number, so the same spec produces the same
    behavior in the parent, in a pool worker, and after a respawn.
    """

    faults: tuple

    @classmethod
    def from_specs(cls, specs: Sequence[FaultSpec]) -> "FaultInjector":
        return cls(faults=tuple(s.validated() for s in specs))

    def spec_for(self, read_name: str) -> Optional[FaultSpec]:
        for spec in self.faults:
            if spec.read == read_name:
                return spec
        return None

    def on_map(self, read_name: str, attempt: int) -> None:
        """Called by ``map_one_read`` before every mapping attempt."""
        spec = self.spec_for(read_name)
        if spec is None or spec.kind in WRITE_KINDS:
            return
        limit = (
            spec.times if spec.times is not None else _DEFAULT_TIMES[spec.kind]
        )
        if limit is not None and attempt > limit:
            return
        if spec.kind == "slow":
            time.sleep(spec.delay_s)
            return
        if spec.kind == "crash":
            if os.environ.get(POOL_WORKER_ENV):
                os._exit(17)
            raise RuntimeError(
                spec.message
                or f"injected crash for {read_name!r} "
                f"(no pool worker to kill)"
            )
        if spec.kind == "parse":
            raise ParseError(
                spec.message or f"injected parse error for {read_name!r}"
            )
        raise RuntimeError(
            spec.message or f"injected {spec.kind} fault for {read_name!r}"
        )

    def on_write(self, read_name: str, fh=None, payload=None) -> None:
        """Called by the ``map_file`` output sink before a read's write.

        ``fh`` is the sink file handle and ``payload`` the full text
        about to be written — what ``torn_write`` needs to freeze a
        half-written record onto disk before killing the process.
        """
        spec = self.spec_for(read_name)
        if spec is None or spec.kind not in WRITE_KINDS:
            return
        limit = (
            spec.times if spec.times is not None else _DEFAULT_TIMES[spec.kind]
        )
        hits = _WRITE_HITS[read_name] = _WRITE_HITS.get(read_name, 0) + 1
        if limit is not None and hits > limit:
            return
        if spec.kind == "disk_full":
            raise OSError(
                errno.ENOSPC,
                spec.message
                or f"No space left on device (injected for {read_name!r})",
            )
        # torn_write: reuse the chaos module's tear-then-die machinery.
        from .chaos import _die, _tear

        _tear(fh, payload)
        _die()


def load_faults(path: str) -> FaultInjector:
    """Build an injector from a JSON spec file.

    The file is a list of objects with ``read`` and ``kind`` (plus
    optional ``times`` / ``delay_s`` / ``message``) — what the CLI's
    ``--inject-faults FILE`` loads for the chaos smoke.
    """
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise SchedulerError(
            f"fault spec file must contain a JSON list: {path}"
        )
    specs = []
    for i, item in enumerate(data):
        try:
            specs.append(
                FaultSpec(
                    read=item["read"],
                    kind=item["kind"],
                    times=item.get("times"),
                    delay_s=float(item.get("delay_s", 0.05)),
                    message=item.get("message", ""),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchedulerError(
                f"bad fault spec entry {i} in {path}: {exc!r}"
            ) from exc
    return FaultInjector.from_specs(specs)
