"""Test-support utilities shipped with the package.

Only deterministic hooks live here (fault injection for the
robustness suite and CI chaos smoke); nothing in :mod:`repro.testing`
is imported by the runtime unless explicitly wired in via
:class:`repro.runtime.faults.FaultPolicy`.
"""
