"""The kill-9 chaos harness: seeded crash points + resume assertions.

Crash-safety is only real if it is *tested* at the exact instants that
matter: between writing output bytes and journaling their commit,
halfway through a journal append, after the output fsync but before
the journal fsync, while the streaming pipeline drains. Timing-based
kills cannot hit those windows reproducibly, so the durability layer
is instrumented with named **chaos points** — one
:func:`chaos_point` call per interesting instant — and this module
turns an environment variable into deterministic mayhem at the n-th
occurrence of a named point:

``MANYMAP_CHAOS="kill@journal.commit.fsync:2"``
    SIGKILL the process the 2nd time that point is reached (a real
    ``kill -9``: no cleanup handlers, no flushes — exactly what a node
    loss looks like).
``MANYMAP_CHAOS="enospc@output.write:3"``
    raise ``OSError(ENOSPC)`` there (disk full).
``MANYMAP_CHAOS="torn@journal.append:1"``
    write only *half* of the pending payload to the hooked file
    handle, flush it, then SIGKILL — a torn write frozen onto disk.

Multiple directives separate with commas. Occurrence counters are
per-process, so a resumed run (a fresh process without the env var)
runs clean.

The harness half (:class:`ChaosRun`) wraps the subprocess choreography
the identity tests and the CI chaos job share: run ``manymap map``
with a chaos spec, assert the process actually died by SIGKILL, run
``manymap resume``, and hand back the artifacts for byte-identity
assertions. Instrumented points (see :mod:`repro.runtime.journal` and
:mod:`repro.utils.fsio`):

========================  ====================================================
point                     instant
========================  ====================================================
``output.write``          before appending one read's PAF lines (mid-chunk)
``output.fsync``          before fsyncing the output segment
``journal.append``        before appending any journal record
``journal.commit.fsync``  before fsyncing the commit record (output already
                          durable — the re-map-tail window)
``stream.drain``          while the streaming pipeline shuts down
``atomic.write``          before an :func:`~repro.utils.fsio.atomic_write`
``atomic.fsync``          before its fsync
``atomic.rename``         before its rename
========================  ====================================================
"""

from __future__ import annotations

import errno
import os
import signal
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CHAOS_ENV",
    "ARMED",
    "chaos_point",
    "parse_spec",
    "reset",
    "seeded_schedule",
    "ChaosRun",
    "KILL_POINTS",
]

#: the environment variable carrying the chaos spec.
CHAOS_ENV = "MANYMAP_CHAOS"

#: chaos-point names a seeded kill schedule draws from. Ordered so a
#: seed maps to a stable schedule across runs and machines.
KILL_POINTS = (
    "output.write",
    "output.fsync",
    "journal.append",
    "journal.commit.fsync",
)

ACTIONS = ("kill", "enospc", "torn")

#: fast-path flag: False until a spec is parsed from the environment,
#: so instrumented hot paths pay one attribute read when chaos is off.
ARMED = bool(os.environ.get(CHAOS_ENV))

_lock = threading.Lock()
_directives: Optional[Dict[str, List[Tuple[str, int]]]] = None
_hits: Dict[str, int] = {}


def parse_spec(spec: str) -> Dict[str, List[Tuple[str, int]]]:
    """Parse ``action@point:nth[,action@point:nth...]`` directives."""
    out: Dict[str, List[Tuple[str, int]]] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            action, _, rest = part.partition("@")
            point, _, nth = rest.rpartition(":")
            n = int(nth)
        except ValueError as exc:
            raise ValueError(f"bad chaos directive {part!r}") from exc
        if action not in ACTIONS or not point or n < 1:
            raise ValueError(
                f"bad chaos directive {part!r}: want "
                f"ACTION@POINT:NTH with ACTION in {ACTIONS} and NTH >= 1"
            )
        out.setdefault(point, []).append((action, n))
    return out


def reset() -> None:
    """Re-read the environment and zero occurrence counters (tests)."""
    global ARMED, _directives
    with _lock:
        _directives = None
        _hits.clear()
        ARMED = bool(os.environ.get(CHAOS_ENV))


def chaos_point(name: str, fh=None, payload=None) -> None:
    """Declare one crash-relevant instant; acts when a directive matches.

    ``fh``/``payload`` give the ``torn`` action something to tear: the
    file handle about to be written and the bytes (or str) that were
    going to be written in full.
    """
    global _directives
    if not ARMED:
        return
    with _lock:
        if _directives is None:
            _directives = parse_spec(os.environ.get(CHAOS_ENV, ""))
        todo = _directives.get(name)
        if not todo:
            return
        _hits[name] = _hits.get(name, 0) + 1
        hit = _hits[name]
    for action, nth in todo:
        if hit != nth:
            continue
        if action == "kill":
            _die()
        if action == "enospc":
            raise OSError(
                errno.ENOSPC,
                f"No space left on device (chaos injection at {name})",
            )
        if action == "torn":
            _tear(fh, payload)
            _die()
    return


def _die() -> None:  # pragma: no cover - the process dies here
    os.kill(os.getpid(), signal.SIGKILL)
    # SIGKILL is not deliverable to ourselves synchronously on every
    # platform; make absolutely sure no cleanup code runs either way.
    os._exit(137)


def _tear(fh, payload) -> None:  # pragma: no cover - followed by _die
    if fh is None or payload is None:
        return
    data = payload.encode("utf-8") if isinstance(payload, str) else payload
    half = data[: max(1, len(data) // 2)]
    try:
        if hasattr(fh, "buffer"):  # text handle over a binary buffer
            fh.flush()
            fh.buffer.write(half)
            fh.buffer.flush()
        elif isinstance(fh.mode, str) and "b" not in fh.mode:
            fh.write(half.decode("utf-8", "ignore"))
            fh.flush()
        else:
            fh.write(half)
            fh.flush()
        os.fsync(fh.fileno())
    except (OSError, ValueError):
        pass


def seeded_schedule(
    seed: int, n_points: int = 4, max_nth: int = 3
) -> List[str]:
    """A deterministic kill schedule: ``n_points`` chaos directives.

    A tiny LCG (not :mod:`random`, so the schedule is stable across
    Python versions) walks the :data:`KILL_POINTS` space. The property
    test runs one kill+resume cycle per directive and asserts identity
    for each.
    """
    state = (seed * 2654435761 + 1) & 0xFFFFFFFF
    out: List[str] = []
    seen = set()
    while len(out) < n_points:
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        point = KILL_POINTS[state % len(KILL_POINTS)]
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        nth = 1 + state % max_nth
        directive = f"kill@{point}:{nth}"
        if directive in seen:
            continue
        seen.add(directive)
        out.append(directive)
    return out


@dataclass
class ChaosResult:
    """What one kill+resume cycle produced."""

    directive: str
    kill_returncode: int
    killed: bool
    resume_returncode: int
    resume_stderr: str
    run_dir: str

    @property
    def output_path(self) -> str:
        return os.path.join(self.run_dir, "output.paf")

    def output_bytes(self) -> bytes:
        with open(self.output_path, "rb") as fh:
            return fh.read()


@dataclass
class ChaosRun:
    """Subprocess choreography for one resumable mapping workload.

    ``map_args`` is everything after ``manymap map`` *except*
    ``--run-dir`` (the harness owns run dirs). :meth:`baseline` runs
    uninterrupted once; :meth:`kill_and_resume` runs the same command
    under a chaos directive, asserts the SIGKILL landed, resumes, and
    returns the :class:`ChaosResult` for identity assertions.
    """

    map_args: Sequence[str]
    workdir: str
    timeout_s: float = 120.0
    env: Dict[str, str] = field(default_factory=dict)
    _n: int = 0

    def _base_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        env.pop(CHAOS_ENV, None)
        env.update(self.env)
        src = os.path.join(os.path.dirname(__file__), "..", "..")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return env

    def _cmd(self, run_dir: str, resume: bool = False) -> List[str]:
        if resume:
            return [sys.executable, "-m", "repro.cli", "resume", run_dir]
        return [
            sys.executable,
            "-m",
            "repro.cli",
            "map",
            *self.map_args,
            "--run-dir",
            run_dir,
        ]

    def _fresh_dir(self, tag: str) -> str:
        self._n += 1
        path = os.path.join(self.workdir, f"run-{tag}-{self._n:03d}")
        return path

    def _run(self, cmd: List[str], env: Dict[str, str], log: str) -> int:
        """Run ``cmd``, stderr/stdout to ``log``; returns the exit code.

        Output goes to a *file*, not a pipe: a SIGKILLed parent can
        leave orphaned pool workers holding the pipe's write end, which
        would stall a ``communicate()``-style read forever. ``wait``
        returns the moment the parent itself dies.
        """
        with open(log, "ab") as sink:
            proc = subprocess.Popen(
                cmd, env=env, stdout=sink, stderr=sink
            )
            try:
                return proc.wait(timeout=self.timeout_s)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                raise

    def baseline(self) -> bytes:
        """One uninterrupted run; returns the committed PAF bytes."""
        run_dir = self._fresh_dir("clean")
        os.makedirs(run_dir, exist_ok=True)
        log = os.path.join(run_dir, "map.log")
        rc = self._run(self._cmd(run_dir), self._base_env(), log)
        if rc != 0:
            with open(log) as fh:
                raise RuntimeError(
                    f"baseline run failed rc={rc}:\n{fh.read()}"
                )
        with open(os.path.join(run_dir, "output.paf"), "rb") as fh:
            return fh.read()

    def kill_and_resume(self, directive: str) -> ChaosResult:
        """Run under ``directive``, then resume; no identity assert here."""
        run_dir = self._fresh_dir("chaos")
        os.makedirs(run_dir, exist_ok=True)
        env = self._base_env()
        env[CHAOS_ENV] = directive
        rc_kill = self._run(
            self._cmd(run_dir), env, os.path.join(run_dir, "map.log")
        )
        killed = rc_kill in (-signal.SIGKILL, 137)
        env.pop(CHAOS_ENV, None)
        resume_log = os.path.join(run_dir, "resume.log")
        rc_resume = self._run(
            self._cmd(run_dir, resume=True), env, resume_log
        )
        with open(resume_log) as fh:
            resume_stderr = fh.read()
        return ChaosResult(
            directive=directive,
            kill_returncode=rc_kill,
            killed=killed,
            resume_returncode=rc_resume,
            resume_stderr=resume_stderr,
            run_dir=run_dir,
        )
