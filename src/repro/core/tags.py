"""SAM fidelity helpers: =/X CIGARs, MD tags, exact NM.

minimap2 offers ``--eqx`` (emit =/X instead of M) and ``--MD``; variant
callers downstream rely on them. These operate on the aligned slices of
the target/query, independent of the DP engine.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..align.cigar import Cigar
from ..errors import AlignmentError
from ..seq.alphabet import decode


def cigar_eqx(cigar: Cigar, target: np.ndarray, query: np.ndarray) -> Cigar:
    """Split M runs into = (match) and X (mismatch) runs.

    ``target``/``query`` are the aligned slices (the CIGAR must cover
    them exactly).
    """
    ops: List[Tuple[int, str]] = []
    ti = qi = 0
    for n, op in cigar.ops:
        if op == "M":
            t = target[ti : ti + n]
            q = query[qi : qi + n]
            if t.size != n or q.size != n:
                raise AlignmentError("CIGAR overruns the aligned slices")
            eq = t == q
            # Run-length encode the equality vector.
            start = 0
            for i in range(1, n + 1):
                if i == n or eq[i] != eq[start]:
                    ops.append((i - start, "=" if eq[start] else "X"))
                    start = i
            ti += n
            qi += n
        else:
            ops.append((n, op))
            if op in "D":
                ti += n
            elif op in "I":
                qi += n
    if ti != target.size or qi != query.size:
        raise AlignmentError(
            f"CIGAR spans ({ti},{qi}) do not cover slices "
            f"({target.size},{query.size})"
        )
    return Cigar(ops).merged()


def nm_distance(cigar: Cigar, target: np.ndarray, query: np.ndarray) -> int:
    """Exact SAM NM: mismatches + inserted + deleted bases."""
    ti = qi = 0
    nm = 0
    for n, op in cigar.ops:
        if op in "M=X":
            nm += int((target[ti : ti + n] != query[qi : qi + n]).sum())
            ti += n
            qi += n
        elif op == "D":
            nm += n
            ti += n
        elif op == "I":
            nm += n
            qi += n
        elif op == "S":
            qi += n
    return nm


def md_tag(cigar: Cigar, target: np.ndarray, query: np.ndarray) -> str:
    """SAM MD string: match counts, mismatched ref bases, ^-deletions.

    Insertions are invisible to MD (it describes the reference bases
    covered by the alignment), per the SAM optional-field spec.
    """
    parts: List[str] = []
    run = 0
    ti = qi = 0
    for n, op in cigar.ops:
        if op in "M=X":
            t = target[ti : ti + n]
            q = query[qi : qi + n]
            for i in range(n):
                if t[i] == q[i]:
                    run += 1
                else:
                    parts.append(str(run))
                    parts.append(decode(t[i : i + 1]))
                    run = 0
            ti += n
            qi += n
        elif op == "D":
            parts.append(str(run))
            run = 0
            parts.append("^" + decode(target[ti : ti + n]))
            ti += n
        elif op in "IS":
            qi += n
    parts.append(str(run))
    return "".join(parts)
