"""Per-stage pipeline profiling (paper Table 2 / Figure 11).

The paper breaks minimap2's runtime into Load Index / Load Query /
Seed & Chain / Align / Output and shows Align dominating (65% on CPU,
83% on KNL). :class:`PipelineProfile` collects the same five stages
from an instrumented run of our pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..utils.timers import StageTimer

#: Canonical stage order used by Table 2 and Figure 11.
STAGES = ["Load Index", "Load Query", "Seed & Chain", "Align", "Output"]


@dataclass
class PipelineProfile:
    """Stage-timing container with the paper's table renderers."""

    timer: StageTimer = field(default_factory=StageTimer)
    label: str = ""

    def add(self, stage: str, seconds: float) -> None:
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {STAGES}")
        self.timer.add(stage, seconds)

    def stage(self, name: str):
        if name not in STAGES:
            raise ValueError(f"unknown stage {name!r}; expected one of {STAGES}")
        return self.timer.stage(name)

    def merge(self, stage_seconds: Dict[str, float]) -> None:
        """Fold another profile's (or a worker's) stage totals into this one.

        Parallel drivers call this with each worker's stage timers, so
        Seed & Chain / Align report *aggregate worker seconds* — the sum
        over workers, which can exceed the run's wall-clock time.
        """
        for stage, seconds in stage_seconds.items():
            self.add(stage, seconds)

    @property
    def total(self) -> float:
        return self.timer.total

    def seconds(self, stage: str) -> float:
        return self.timer.stages.get(stage, 0.0)

    def percentage(self, stage: str) -> float:
        total = self.total or 1.0
        return 100.0 * self.seconds(stage) / total

    def rows(self) -> List[Tuple[str, float, float]]:
        """``(stage, seconds, percent)`` in canonical order."""
        return [(s, self.seconds(s), self.percentage(s)) for s in STAGES]

    def render(self) -> str:
        lines = []
        if self.label:
            lines.append(self.label)
        lines.append(f"{'Stage':<14}{'Time (s)':>12}{'Percentage':>12}")
        for stage, sec, pct in self.rows():
            lines.append(f"{stage:<14}{sec:>12.3f}{pct:>12.2f}")
        lines.append(f"{'Total':<14}{self.total:>12.3f}{100.0:>12.2f}")
        return "\n".join(lines)

    @staticmethod
    def compare(profiles: Dict[str, "PipelineProfile"]) -> str:
        """Side-by-side breakdown table (Table 2's CPU-vs-KNL layout)."""
        keys = list(profiles)
        header = f"{'Stage':<14}" + "".join(
            f"{k + ' (s)':>14}{'%':>8}" for k in keys
        )
        lines = [header]
        for stage in STAGES:
            row = f"{stage:<14}"
            for k in keys:
                p = profiles[k]
                row += f"{p.seconds(stage):>14.3f}{p.percentage(stage):>8.2f}"
            lines.append(row)
        row = f"{'Total':<14}"
        for k in keys:
            row += f"{profiles[k].total:>14.3f}{100.0:>8.2f}"
        lines.append(row)
        return "\n".join(lines)
