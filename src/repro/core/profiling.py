"""Per-stage pipeline profiling (paper Table 2 / Figure 11).

The paper breaks minimap2's runtime into Load Index / Load Query /
Seed & Chain / Align / Output and shows Align dominating (65% on CPU,
83% on KNL). :class:`PipelineProfile` collects the same five stages
from an instrumented run of our pipeline.

Stages outside the canonical five are *recorded*, not rejected: worker
timers may carry extra stage keys (a future "Serialize" stage, say) and
the parallel drivers must be able to merge them. Canonical stages
always render first, extras follow in first-use order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..utils.timers import StageTimer

#: Canonical stage order used by Table 2 and Figure 11.
STAGES = ["Load Index", "Load Query", "Seed & Chain", "Align", "Output"]


@dataclass
class PipelineProfile:
    """Stage-timing container with the paper's table renderers."""

    timer: StageTimer = field(default_factory=StageTimer)
    label: str = ""

    def add(self, stage: str, seconds: float) -> None:
        self.timer.add(stage, seconds)

    def stage(self, name: str):
        return self.timer.stage(name)

    def merge(self, stage_seconds: Dict[str, float]) -> None:
        """Fold another profile's (or a worker's) stage totals into this one.

        Parallel drivers call this with each worker's stage timers, so
        Seed & Chain / Align report *aggregate worker seconds* — the sum
        over workers, which can exceed the run's wall-clock time.
        """
        for stage, seconds in stage_seconds.items():
            self.add(stage, seconds)

    @property
    def total(self) -> float:
        return self.timer.total

    def seconds(self, stage: str) -> float:
        return self.timer.stages.get(stage, 0.0)

    def percentage(self, stage: str) -> float:
        total = self.total
        if total <= 0.0:
            return 0.0
        return 100.0 * self.seconds(stage) / total

    def extra_stages(self) -> List[str]:
        """Recorded stages outside the canonical five, first-use order."""
        return [s for s in self.timer.stages if s not in STAGES]

    def rows(self) -> List[Tuple[str, float, float]]:
        """``(stage, seconds, percent)``, canonical order then extras."""
        return [
            (s, self.seconds(s), self.percentage(s))
            for s in STAGES + self.extra_stages()
        ]

    def render(self) -> str:
        lines = []
        if self.label:
            lines.append(self.label)
        lines.append(f"{'Stage':<14}{'Time (s)':>12}{'Percentage':>12}")
        for stage, sec, pct in self.rows():
            lines.append(f"{stage:<14}{sec:>12.3f}{pct:>12.2f}")
        total_pct = 100.0 if self.total > 0.0 else 0.0
        lines.append(f"{'Total':<14}{self.total:>12.3f}{total_pct:>12.2f}")
        return "\n".join(lines)

    @staticmethod
    def compare(profiles: Dict[str, "PipelineProfile"]) -> str:
        """Side-by-side breakdown table (Table 2's CPU-vs-KNL layout)."""
        keys = list(profiles)
        extras: List[str] = []
        for p in profiles.values():
            for s in p.extra_stages():
                if s not in extras:
                    extras.append(s)
        widths = {k: max(14, len(k) + 5) for k in keys}
        header = f"{'Stage':<14}" + "".join(
            f"{k + ' (s)':>{widths[k]}}{'%':>8}" for k in keys
        )
        lines = [header]
        for stage in STAGES + extras:
            row = f"{stage:<14}"
            for k in keys:
                p = profiles[k]
                row += (
                    f"{p.seconds(stage):>{widths[k]}.3f}"
                    f"{p.percentage(stage):>8.2f}"
                )
            lines.append(row)
        row = f"{'Total':<14}"
        for k in keys:
            p = profiles[k]
            total_pct = 100.0 if p.total > 0.0 else 0.0
            row += f"{p.total:>{widths[k]}.3f}{total_pct:>8.2f}"
        lines.append(row)
        return "\n".join(lines)
