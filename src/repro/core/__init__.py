"""The manymap aligner: public API tying all substrates together.

:class:`Aligner` implements the full seed–chain–extend pipeline of
minimap2 (§3.1) with a pluggable base-level DP engine, so the original
(``engine='mm2'``) and revised (``engine='manymap'``) kernels can be
swapped while producing identical alignments — the property Table 5
relies on ("manymap produces the same alignment result as minimap2").
"""

from .presets import Preset, get_preset, PRESETS
from .alignment import Alignment, to_paf, to_sam, sam_header
from .aligner import Aligner
from .profiling import PipelineProfile
from .driver import BatchDriver
from .platform import PlatformProjection
from .tags import cigar_eqx, md_tag, nm_distance

__all__ = [
    "Preset",
    "get_preset",
    "PRESETS",
    "Alignment",
    "to_paf",
    "to_sam",
    "sam_header",
    "Aligner",
    "PipelineProfile",
    "BatchDriver",
    "PlatformProjection",
    "cigar_eqx",
    "md_tag",
    "nm_distance",
]
