"""Batch driver: runs the full pipeline with per-stage instrumentation.

This is the single-threaded measured pipeline behind Table 2 and
Figure 11 — load index, load query, seed & chain, align, output — with
real wall-clock timing per stage. Pipelined/parallel execution lives in
:mod:`repro.runtime`; this driver is deliberately serial so its stage
times can feed the machine models.
"""

from __future__ import annotations

import io
import os
import time
from typing import Dict, List, Optional, Sequence, Union

from ..index.store import load_index
from ..obs.metrics import build_metrics
from ..obs.telemetry import Telemetry, read_span
from ..seq.fasta import read_fasta, read_fastq
from ..seq.genome import Genome
from ..seq.records import ReadSet, SeqRecord
from .aligner import Aligner
from .alignment import Alignment, to_paf
from .profiling import PipelineProfile


class BatchDriver:
    """Runs reads through an :class:`Aligner`, timing the paper's stages.

    ``trace=True`` additionally records one telemetry span per read
    (see :class:`~repro.obs.telemetry.Telemetry`); counters are scoped
    to the driver's lifetime and surface through :meth:`metrics`.
    """

    def __init__(
        self, aligner: Aligner, label: str = "", trace: bool = False
    ) -> None:
        self.aligner = aligner
        self.profile = PipelineProfile(label=label)
        self.telemetry = Telemetry(trace=trace)
        self._n_reads = 0
        self._total_bases = 0
        self._n_mapped = 0

    @classmethod
    def from_index_file(
        cls,
        genome: Genome,
        index_path: Union[str, os.PathLike],
        load_mode: str = "buffered",
        preset: str = "map-pb",
        engine: str = "manymap",
        label: str = "",
    ) -> "BatchDriver":
        """Build a driver whose index-load time is measured for real.

        ``load_mode='mmap'`` exercises the paper's memory-mapped I/O
        path (§4.4.2) — the load returns almost immediately because
        pages are faulted in on demand.
        """
        profile = PipelineProfile(label=label)
        with profile.stage("Load Index"):
            index = load_index(index_path, mode=load_mode)
        aligner = Aligner(genome, preset=preset, engine=engine, index=index)
        driver = cls(aligner, label=label)
        driver.profile = profile
        return driver

    def load_reads(self, source) -> ReadSet:
        """Load query reads (paths, handles, or pass-through ReadSet)."""
        with self.profile.stage("Load Query"):
            if isinstance(source, ReadSet):
                return source
            if isinstance(source, (list, tuple)):
                rs = ReadSet(reads=list(source))
                return rs
            path = os.fspath(source)
            records = (
                read_fastq(path)
                if path.endswith((".fq", ".fastq"))
                else read_fasta(path)
            )
            return ReadSet(reads=records)

    def run(
        self,
        reads: Union[ReadSet, Sequence[SeqRecord]],
        output: Optional[io.TextIOBase] = None,
        with_cigar: bool = True,
    ) -> List[List[Alignment]]:
        """Map every read, timing seed&chain / align / output separately."""
        if isinstance(reads, ReadSet):
            records = list(reads)
        else:
            records = list(reads)
        results: List[List[Alignment]] = []
        for read in records:
            t0 = time.perf_counter()
            with self.profile.stage("Seed & Chain"):
                plan = self.aligner.seed_and_chain(read)
            t1 = time.perf_counter()
            with self.profile.stage("Align"):
                alns = self.aligner.align_plan(read, plan, with_cigar=with_cigar)
            if self.telemetry.trace:
                self.telemetry.record(
                    read_span(
                        read.name,
                        len(read),
                        t1 - t0,
                        time.perf_counter() - t1,
                    )
                )
            results.append(alns)
        with self.profile.stage("Output"):
            self._write_output(results, output)
        self._note_run(records, results)
        return results

    def _note_run(
        self,
        records: Sequence[SeqRecord],
        results: List[List[Alignment]],
    ) -> None:
        self._n_reads += len(records)
        self._total_bases += sum(len(r) for r in records)
        self._n_mapped += self.n_mapped(results)

    def metrics(self, config: Optional[Dict] = None) -> Dict:
        """The run manifest (``--metrics`` document) for this driver."""
        cfg = {
            "preset": self.aligner.preset.name,
            "engine": self.aligner.engine_name,
            "backend": "serial",
            "workers": 1,
        }
        cfg.update(config or {})
        return build_metrics(
            self.profile,
            self.telemetry,
            config=cfg,
            reads={
                "n_reads": self._n_reads,
                "total_bases": self._total_bases,
                "n_mapped": self._n_mapped,
            },
            label=self.profile.label,
        )

    def write_timeline(self, path: Union[str, os.PathLike]) -> int:
        """Export the driver's trace spans as a Chrome-trace/Perfetto
        timeline JSON (needs ``trace=True`` so spans were recorded);
        returns the number of trace events written."""
        from ..obs.timeline import write_timeline

        return write_timeline(
            os.fspath(path),
            self.telemetry.spans,
            self.telemetry.faults,
            run_id=self.telemetry.run_id,
            gauges=self.telemetry.gauges.snapshot(),
            label=self.profile.label,
        )

    def _write_output(
        self,
        results: List[List[Alignment]],
        output: Optional[io.TextIOBase],
    ) -> None:
        """Stream PAF lines one at a time: peak memory is O(longest line),
        not O(total output). Formatting runs even with no sink so the
        Output stage time stays comparable across invocations."""
        for alns in results:
            for aln in alns:
                line = to_paf(aln)
                if output is not None:
                    output.write(line)
                    output.write("\n")

    def n_mapped(self, results: List[List[Alignment]]) -> int:
        return sum(1 for alns in results if alns)


class ParallelDriver(BatchDriver):
    """Batch driver running any registered execution backend.

    Backends resolve through the registry in
    :mod:`repro.runtime.backends` (``serial`` / ``threads`` /
    ``processes`` / ``streaming``); pass either the legacy keyword
    arguments or a prebuilt :class:`repro.api.MapOptions` via
    ``options`` (which wins over the individual kwargs).

    Per-stage profiling is preserved across workers: each worker times
    its own Seed & Chain / Align stages and the driver merges the
    timers, so those two stages report *aggregate worker seconds* (the
    sum over workers — up to ``workers ×`` the wall-clock time), while
    Load Index / Load Query / Output remain wall-clock as in
    :class:`BatchDriver`.
    """

    def __init__(
        self,
        aligner: Aligner,
        backend: str = "processes",
        workers: int = 2,
        chunk_reads: int = 32,
        chunk_bases: int = 1_000_000,
        longest_first: bool = True,
        index_path: Optional[Union[str, os.PathLike]] = None,
        label: str = "",
        trace: bool = False,
        options: Optional["MapOptions"] = None,
        fault_policy=None,
    ) -> None:
        from ..api import MapOptions

        if options is None:
            options = MapOptions(
                backend=backend,
                workers=workers,
                chunk_reads=chunk_reads,
                chunk_bases=chunk_bases,
                longest_first=longest_first,
                index_path=os.fspath(index_path) if index_path else None,
                fault_policy=fault_policy,
            )
        options = options.validated()
        super().__init__(
            aligner,
            label=label or f"{options.backend}[{options.workers}]",
            trace=trace,
        )
        #: the run configuration; the kwarg properties below mirror it.
        self.options = options

    @property
    def backend(self) -> str:
        return self.options.backend

    @property
    def workers(self) -> int:
        return self.options.workers

    @property
    def chunk_reads(self) -> int:
        return self.options.chunk_reads

    @property
    def chunk_bases(self) -> int:
        return self.options.chunk_bases

    @property
    def longest_first(self) -> bool:
        return self.options.longest_first

    @property
    def index_path(self) -> Optional[str]:
        """Serialized index reused by process workers (mmap, zero-copy);
        when None the process backends serialize the index per run."""
        return self.options.index_path

    @classmethod
    def from_index_file(
        cls,
        genome: Genome,
        index_path: Union[str, os.PathLike],
        load_mode: str = "mmap",
        preset: str = "map-pb",
        engine: str = "manymap",
        label: str = "",
        backend: str = "processes",
        workers: int = 2,
        **kwargs,
    ) -> "ParallelDriver":
        """Build a parallel driver over a serialized index.

        The parent loads the index (timed as Load Index); process
        workers re-open the same file in ``mmap`` mode, sharing it
        zero-copy through the page cache.
        """
        profile = PipelineProfile(label=label or f"{backend}[{workers}]")
        with profile.stage("Load Index"):
            index = load_index(index_path, mode=load_mode)
        aligner = Aligner(genome, preset=preset, engine=engine, index=index)
        driver = cls(
            aligner,
            backend=backend,
            workers=workers,
            index_path=index_path,
            label=label,
            **kwargs,
        )
        driver.profile = profile
        return driver

    def run(
        self,
        reads: Union[ReadSet, Sequence[SeqRecord]],
        output: Optional[io.TextIOBase] = None,
        with_cigar: bool = True,
    ) -> List[List[Alignment]]:
        """Map every read on the configured backend; stream PAF output."""
        from ..runtime.backends import dispatch

        records = list(reads)
        results = dispatch(
            self.aligner,
            records,
            self.options.replace(with_cigar=with_cigar),
            profile=self.profile,
            telemetry=self.telemetry,
        )
        with self.profile.stage("Output"):
            self._write_output(results, output)
        self._note_run(records, results)
        return results

    def metrics(self, config: Optional[Dict] = None) -> Dict:
        policy = self.options.fault_policy
        cfg = {
            "backend": self.backend,
            "workers": self.workers,
            "chunk_reads": self.chunk_reads,
            "chunk_bases": self.chunk_bases,
            "longest_first": self.longest_first,
            "on_error": policy.on_error if policy is not None else "abort",
        }
        cfg.update(config or {})
        return super().metrics(config=cfg)
