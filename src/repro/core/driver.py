"""Batch driver: runs the full pipeline with per-stage instrumentation.

This is the single-threaded measured pipeline behind Table 2 and
Figure 11 — load index, load query, seed & chain, align, output — with
real wall-clock timing per stage. Pipelined/parallel execution lives in
:mod:`repro.runtime`; this driver is deliberately serial so its stage
times can feed the machine models.
"""

from __future__ import annotations

import io
import os
from typing import List, Optional, Sequence, Union

from ..errors import ReproError
from ..index.store import load_index
from ..seq.fasta import read_fasta, read_fastq
from ..seq.genome import Genome
from ..seq.records import ReadSet, SeqRecord
from .aligner import Aligner
from .alignment import Alignment, to_paf
from .profiling import PipelineProfile


class BatchDriver:
    """Runs reads through an :class:`Aligner`, timing the paper's stages."""

    def __init__(self, aligner: Aligner, label: str = "") -> None:
        self.aligner = aligner
        self.profile = PipelineProfile(label=label)

    @classmethod
    def from_index_file(
        cls,
        genome: Genome,
        index_path: Union[str, os.PathLike],
        load_mode: str = "buffered",
        preset: str = "map-pb",
        engine: str = "manymap",
        label: str = "",
    ) -> "BatchDriver":
        """Build a driver whose index-load time is measured for real.

        ``load_mode='mmap'`` exercises the paper's memory-mapped I/O
        path (§4.4.2) — the load returns almost immediately because
        pages are faulted in on demand.
        """
        profile = PipelineProfile(label=label)
        with profile.stage("Load Index"):
            index = load_index(index_path, mode=load_mode)
        aligner = Aligner(genome, preset=preset, engine=engine, index=index)
        driver = cls(aligner, label=label)
        driver.profile = profile
        return driver

    def load_reads(self, source) -> ReadSet:
        """Load query reads (paths, handles, or pass-through ReadSet)."""
        with self.profile.stage("Load Query"):
            if isinstance(source, ReadSet):
                return source
            if isinstance(source, (list, tuple)):
                rs = ReadSet(reads=list(source))
                return rs
            path = os.fspath(source)
            records = (
                read_fastq(path)
                if path.endswith((".fq", ".fastq"))
                else read_fasta(path)
            )
            return ReadSet(reads=records)

    def run(
        self,
        reads: Union[ReadSet, Sequence[SeqRecord]],
        output: Optional[io.TextIOBase] = None,
        with_cigar: bool = True,
    ) -> List[List[Alignment]]:
        """Map every read, timing seed&chain / align / output separately."""
        if isinstance(reads, ReadSet):
            records = list(reads)
        else:
            records = list(reads)
        results: List[List[Alignment]] = []
        for read in records:
            with self.profile.stage("Seed & Chain"):
                plan = self.aligner.seed_and_chain(read)
            with self.profile.stage("Align"):
                alns = self.aligner.align_plan(read, plan, with_cigar=with_cigar)
            results.append(alns)
        with self.profile.stage("Output"):
            lines = [to_paf(a) for alns in results for a in alns]
            text = "\n".join(lines) + ("\n" if lines else "")
            if output is not None:
                output.write(text)
        return results

    def n_mapped(self, results: List[List[Alignment]]) -> int:
        return sum(1 for alns in results if alns)
