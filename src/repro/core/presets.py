"""Parameter presets mirroring minimap2's ``-ax map-pb`` / ``map-ont``.

Deviation from upstream: minimap2's map-pb preset uses homopolymer-
compressed k=19 seeds; HPC seeding is orthogonal to everything this
reproduction measures, so both presets here use plain k=15 minimizers
(documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..align.scoring import MAP_ONT, MAP_PB, Scoring
from ..chain.chain import ChainParams
from ..errors import ReproError


@dataclass(frozen=True)
class Preset:
    """A named bundle of indexing, chaining and scoring parameters."""

    name: str
    k: int
    w: int
    scoring: Scoring
    chain: ChainParams
    occ_filter_frac: float = 2e-4
    mask_level: float = 0.5
    hpc: bool = False
    #: cross-read DP batching knobs for the kernel-dispatch layer;
    #: ``None`` defers to the selected kernel's own defaults.
    batch_max: Optional[int] = None
    batch_buckets: Optional[Tuple[int, ...]] = None

    def with_overrides(self, **kwargs) -> "Preset":
        return replace(self, **kwargs)


PRESETS = {
    "map-pb": Preset(
        name="map-pb",
        k=15,
        w=10,
        scoring=MAP_PB,
        chain=ChainParams(k=15, bandwidth=500, min_score=40, min_count=3),
    ),
    "map-ont": Preset(
        name="map-ont",
        k=15,
        w=10,
        scoring=MAP_ONT,
        chain=ChainParams(k=15, bandwidth=500, min_score=40, min_count=3),
    ),
    # Upstream map-pb's actual seeding: homopolymer-compressed k=19.
    "map-pb-hpc": Preset(
        name="map-pb-hpc",
        k=19,
        w=10,
        scoring=MAP_PB,
        chain=ChainParams(k=19, bandwidth=500, min_score=40, min_count=3),
        hpc=True,
    ),
    # Small-genome testing preset: shorter seeds, permissive chain filter.
    "test": Preset(
        name="test",
        k=13,
        w=5,
        scoring=MAP_PB,
        chain=ChainParams(k=13, bandwidth=500, min_score=25, min_count=3),
        occ_filter_frac=1e-3,
    ),
}


def get_preset(name: str) -> Preset:
    """Look up a preset by name ('map-pb', 'map-ont', 'test')."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ReproError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
