"""Alignment records and PAF/SAM formatting.

Coordinates follow PAF: 0-based half-open, with query coordinates in
the *original read orientation* (for reverse-strand hits the internal
RC-frame interval is flipped before reporting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..align.cigar import Cigar
from ..seq.alphabet import decode, revcomp_codes
from ..seq.records import SeqRecord


@dataclass
class Alignment:
    """One reported alignment of a read against the reference."""

    qname: str
    qlen: int
    qstart: int  # 0-based, original read orientation
    qend: int  # exclusive
    strand: int  # +1 / -1
    tname: str
    tlen: int
    tstart: int  # 0-based
    tend: int  # exclusive
    n_match: int
    block_len: int
    mapq: int
    score: int
    cigar: Optional[Cigar] = None
    is_primary: bool = True
    tags: Dict[str, object] = field(default_factory=dict)

    @property
    def identity(self) -> float:
        """Matching bases over alignment block length (PAF convention)."""
        return self.n_match / self.block_len if self.block_len else 0.0

    def overlaps_truth(self, chrom: str, start: int, end: int, slop: int = 0) -> bool:
        """Whether this alignment hits interval ``chrom:start-end``.

        Used for the paper's accuracy metric: an alignment is *correct*
        when it overlaps the simulated read's true origin.
        """
        if self.tname != chrom:
            return False
        return self.tstart < end + slop and self.tend > start - slop


def to_paf(aln: Alignment) -> str:
    """Render one alignment as a PAF line (with cg/AS/tp tags)."""
    fields = [
        aln.qname,
        str(aln.qlen),
        str(aln.qstart),
        str(aln.qend),
        "+" if aln.strand > 0 else "-",
        aln.tname,
        str(aln.tlen),
        str(aln.tstart),
        str(aln.tend),
        str(aln.n_match),
        str(aln.block_len),
        str(aln.mapq),
    ]
    fields.append(f"tp:A:{'P' if aln.is_primary else 'S'}")
    fields.append(f"AS:i:{aln.score}")
    if aln.cigar is not None:
        fields.append(f"cg:Z:{aln.cigar}")
    return "\t".join(fields)


def sam_header(names: Sequence[str], lengths: Sequence[int]) -> str:
    """Minimal SAM header with @SQ lines and a @PG record."""
    lines = ["@HD\tVN:1.6\tSO:unsorted"]
    for name, ln in zip(names, lengths):
        lines.append(f"@SQ\tSN:{name}\tLN:{int(ln)}")
    lines.append("@PG\tID:manymap\tPN:manymap\tVN:0.1.0")
    return "\n".join(lines)


def to_sam(aln: Alignment, read: SeqRecord) -> str:
    """Render one alignment as a SAM line.

    Reverse-strand alignments emit the reverse-complemented sequence
    with flag 16, per the SAM spec. Unaligned query ends become soft
    clips around the CIGAR.
    """
    flag = 0
    codes = read.codes
    if aln.strand < 0:
        flag |= 16
        codes = revcomp_codes(codes)
    if not aln.is_primary:
        flag |= 256
    cig = aln.cigar
    if cig is None:
        cigar_str = "*"
    else:
        # Clip coordinates are in the aligned (possibly RC) orientation.
        if aln.strand > 0:
            lead, tail = aln.qstart, aln.qlen - aln.qend
        else:
            lead, tail = aln.qlen - aln.qend, aln.qstart
        ops = list(cig.ops)
        if lead:
            ops.insert(0, (lead, "S"))
        if tail:
            ops.append((tail, "S"))
        cigar_str = str(Cigar(ops))
    qual = (
        (read.quality + 33).astype(np.uint8).tobytes().decode("ascii")
        if read.quality is not None and aln.strand > 0
        else "*"
    )
    fields = [
        aln.qname,
        str(flag),
        aln.tname,
        str(aln.tstart + 1),  # SAM is 1-based
        str(aln.mapq),
        cigar_str,
        "*",
        "0",
        "0",
        decode(codes),
        qual,
        f"AS:i:{aln.score}",
        f"NM:i:{max(0, aln.block_len - aln.n_match)}",
    ]
    return "\t".join(fields)
