"""Projecting a measured pipeline profile onto the three processors.

Figure 11's logic as a library: take a *measured* single-thread CPU
stage profile of the mm2-engine pipeline and derive the other four
configurations of the paper's comparison — CPU manymap, KNL minimap2,
KNL manymap, GPU manymap — from the machine models. Calibrated
constants (documented in EXPERIMENTS.md):

* ``dp_frac_cpu`` / ``dp_frac_knl`` — the DP-kernel share of the macro
  Align stage, reconciling the micro kernel ratios with the paper's
  overall 1.4x / 2.3x speedups;
* ``gpu_occupancy`` — average achieved GPU occupancy of the macro
  pipeline, calibrated to the paper's narrow GPU-vs-CPU margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..machine.cpu import CpuModel, XEON_GOLD_5115
from ..machine.gpu import GpuModel, TESLA_V100
from ..machine.isa import AVX512BW, SSE2
from ..machine.knl import KnlModel, XEON_PHI_7210
from .profiling import STAGES, PipelineProfile


@dataclass
class PlatformProjection:
    """Derives modeled platform profiles from one measured CPU profile."""

    cpu: CpuModel = field(default_factory=lambda: XEON_GOLD_5115)
    knl: KnlModel = field(default_factory=lambda: XEON_PHI_7210)
    gpu: GpuModel = field(default_factory=lambda: TESLA_V100)
    dp_frac_cpu: float = 0.55
    dp_frac_knl: float = 0.85
    gpu_occupancy: float = 0.58
    probe_length: int = 4000

    @staticmethod
    def _stage_speedup(kernel_ratio: float, dp_frac: float) -> float:
        return 1.0 / ((1.0 - dp_frac) + dp_frac / kernel_ratio)

    def kernel_ratio_cpu(self, mode: str = "path") -> float:
        """manymap(AVX-512) over original minimap2(SSE2) on the CPU."""
        return self.cpu.micro_gcups(
            "manymap", AVX512BW, mode, self.probe_length
        ) / self.cpu.micro_gcups("mm2", SSE2, mode, self.probe_length)

    def kernel_ratio_knl(self, mode: str = "path") -> float:
        return self.knl.micro_gcups(
            "manymap", mode, self.probe_length
        ) / self.knl.micro_gcups("mm2", mode, self.probe_length)

    def project(self, cpu_mm2: PipelineProfile) -> Dict[str, PipelineProfile]:
        """Return all five configurations keyed like Figure 11."""
        cpu_many = PipelineProfile(label="CPU manymap")
        r_cpu = self.kernel_ratio_cpu()
        for stage in STAGES:
            t = cpu_mm2.seconds(stage)
            if stage == "Align":
                t /= self._stage_speedup(r_cpu, self.dp_frac_cpu)
            elif stage == "Load Index":
                t /= 2.0  # memory-mapped I/O (§4.4.2)
            cpu_many.add(stage, t)

        knl_mm2 = PipelineProfile(label="KNL minimap2")
        for stage in STAGES:
            knl_mm2.add(stage, cpu_mm2.seconds(stage) * self.knl.stage_slowdown[stage])

        knl_many = PipelineProfile(label="KNL manymap")
        r_knl = self.kernel_ratio_knl()
        for stage in STAGES:
            t = knl_mm2.seconds(stage)
            if stage == "Align":
                t /= self._stage_speedup(r_knl, self.dp_frac_knl)
            elif stage in ("Load Index", "Load Query", "Output"):
                t /= 2.0  # mmap + dedicated I/O thread (§4.4.2-4.4.4)
            knl_many.add(stage, t)

        gpu_many = PipelineProfile(label="GPU manymap")
        gpu_ratio = (
            self.gpu.micro_gcups("manymap", "path", self.probe_length)
            * self.gpu_occupancy
            / self.cpu.micro_gcups("manymap", AVX512BW, "path", self.probe_length)
        )
        for stage in STAGES:
            t = cpu_many.seconds(stage)
            if stage == "Align":
                t /= max(gpu_ratio, 1e-9)
            gpu_many.add(stage, t)

        cpu_mm2_out = PipelineProfile(label="CPU minimap2")
        for stage in STAGES:
            cpu_mm2_out.add(stage, cpu_mm2.seconds(stage))
        return {
            "CPU mm2": cpu_mm2_out,
            "CPU many": cpu_many,
            "KNL mm2": knl_mm2,
            "KNL many": knl_many,
            "GPU many": gpu_many,
        }
