"""The manymap/minimap2 aligner: seed → chain → extend.

``Aligner.map_read`` runs the full pipeline of §3.1 for one read:

1. **Seed** — extract query minimizers, look them up in the reference
   index (anchors).
2. **Chain** — cluster anchors into colinear chains with the chaining
   DP; pick primary chains.
3. **Extend** — fill inter-anchor gaps with global base-level DP and
   extend past the terminal anchors with z-drop extension, stitching
   the per-segment CIGARs into the final alignment.

The base-level step is *planned* separately from its execution: each
chain is turned into a static list of :class:`~repro.align.dispatch.DPJob`
s (left extension, inter-anchor gaps, right extension) that the
kernel-dispatch layer executes — pooled across chains, and across whole
read chunks via :meth:`Aligner.align_plans` — before the per-chain
results are stitched back into alignments. Cross-read pooling is what
feeds the batched wavefront kernel big buckets; because every batched
kernel is bit-identical to its per-pair fallback, pooling never changes
output.

Setting ``kernel=None`` (or any non-default ``engine``) keeps the
legacy per-pair engine path from :mod:`repro.align.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..align.batch_kernel import align_batch
from ..align.cigar import Cigar
from ..align.dispatch import DEFAULT_KERNEL, DPJob, KernelDispatch
from ..align.engine import get_engine
from ..align.extend import finish_extension
from ..chain.anchors import collect_anchors
from ..chain.chain import Chain, chain_anchors
from ..chain.select import estimate_mapq, select_chains
from ..errors import AlignmentError
from ..index.index import MinimizerIndex, build_index
from ..obs.counters import COUNTERS
from ..seq.alphabet import AMBIG, revcomp_codes
from ..seq.genome import Genome
from ..seq.records import SeqRecord
from .alignment import Alignment
from .presets import Preset, get_preset


@dataclass(frozen=True)
class AlignerConfig:
    """Picklable recipe for rebuilding an :class:`Aligner` elsewhere.

    The process-parallel backend (:mod:`repro.runtime.procpool`) ships
    one of these to each worker instead of the aligner itself: the
    config plus the genome pickle in ~hundreds of bytes/kilobytes,
    while the minimizer index — the heavy part — is reopened from its
    serialized file in ``mmap`` mode so all workers share the same
    page-cache copy.
    """

    preset: Preset
    engine: str = "manymap"
    max_ext: int = 2000
    batch_segments: bool = True
    kernel: Optional[str] = "auto"
    batch_max: Optional[int] = None
    batch_buckets: Optional[Tuple[int, ...]] = None

    def build(
        self, genome: Genome, index: Optional[MinimizerIndex] = None
    ) -> "Aligner":
        """Reconstruct the aligner (optionally over a preloaded index)."""
        return Aligner(
            genome,
            preset=self.preset,
            engine=self.engine,
            index=index,
            max_ext=self.max_ext,
            batch_segments=self.batch_segments,
            kernel=self.kernel,
            batch_max=self.batch_max,
            batch_buckets=self.batch_buckets,
        )


@dataclass
class MappingPlan:
    """Output of the seed-and-chain phase, input to the align phase."""

    chains: List[Chain]
    primary: List[Chain]
    secondary: List[Chain]

    @property
    def mapped(self) -> bool:
        return bool(self.primary)


@dataclass
class _ChainAlignment:
    """Internal: a chain turned into a base-level alignment (RC frame)."""

    score: int
    cigar: Cigar
    tstart: int
    tend: int  # exclusive
    qstart: int  # RC frame when strand == 1
    qend: int  # exclusive


@dataclass
class _ChainPlan:
    """Static DP plan for one chain: jobs out, assembly metadata kept.

    ``jobs[0]`` is the left extension (inputs pre-reversed), ``jobs[-1]``
    the right extension; gap segments sit in between, referenced by
    ``mid_plan`` entries ``("DP", local_job_index)``.
    """

    with_cigar: bool
    klen: int
    static_score: int
    lt0: int
    lq0: int
    rt0: int
    rq0: int
    mid_plan: List[tuple]
    jobs: List[DPJob]
    job_base: int = 0  # offset of jobs[0] in a pooled job list


class Aligner:
    """Long-read aligner over a prebuilt or freshly built minimizer index.

    Parameters
    ----------
    genome:
        The reference; required for base-level alignment.
    preset:
        Name ('map-pb', 'map-ont', 'test') or a :class:`Preset`.
    engine:
        Per-pair DP engine name ('manymap', 'mm2', 'scalar',
        'reference', 'wavefront').
    kernel:
        Kernel-dispatch selection. ``"auto"`` (default) routes base-level
        DP through the cross-read batched wavefront kernel when the
        default engine is in use, and falls back to the legacy per-pair
        path for any explicitly chosen non-default engine. A registry
        name (see :func:`repro.align.kernel_names`) forces that kernel;
        ``None`` forces the legacy per-pair path.
    index:
        Reuse an existing :class:`MinimizerIndex` (must match the
        preset's k and w) instead of building one.
    batch_max / batch_buckets:
        Cross-read batching knobs forwarded to the dispatch layer;
        ``None`` defers to the preset, then to the kernel's defaults.
    """

    #: path of the serialized index this aligner was opened from, when
    #: known (set by :func:`repro.api.open_index`); process-backed
    #: mapping reuses it so workers mmap the same file zero-copy.
    index_source: Optional[str] = None

    #: gap segments at most this long run unbanded (they are fully
    #: covered by small DP matrices); longer ones get a drift corridor.
    #: This is an output-affecting policy, deliberately NOT tied to the
    #: perf-only batching knobs.
    _SEG_UNBANDED_MAX = 192

    def __init__(
        self,
        genome: Genome,
        preset: Union[str, Preset] = "map-pb",
        engine: str = "manymap",
        index: Optional[MinimizerIndex] = None,
        max_ext: int = 2000,
        batch_segments: bool = True,
        kernel: Optional[str] = "auto",
        batch_max: Optional[int] = None,
        batch_buckets: Optional[Tuple[int, ...]] = None,
    ) -> None:
        self.batch_segments = batch_segments
        self.genome = genome
        self.preset = get_preset(preset) if isinstance(preset, str) else preset
        self.engine_name = engine
        self.engine = get_engine(engine)
        self.set_kernel(kernel, batch_max=batch_max, batch_buckets=batch_buckets)
        if index is not None:
            if (
                index.k != self.preset.k
                or index.w != self.preset.w
                or index.hpc != self.preset.hpc
            ):
                raise AlignmentError(
                    f"index (k={index.k}, w={index.w}, hpc={index.hpc}) does "
                    f"not match preset (k={self.preset.k}, w={self.preset.w}, "
                    f"hpc={self.preset.hpc})"
                )
            self.index = index
        else:
            self.index = build_index(
                genome,
                k=self.preset.k,
                w=self.preset.w,
                occ_filter_frac=self.preset.occ_filter_frac,
                hpc=self.preset.hpc,
            )
        self.max_ext = max_ext

    def set_kernel(
        self,
        kernel: Optional[str] = "auto",
        batch_max: Optional[int] = None,
        batch_buckets: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Point base-level DP at a (possibly different) dispatch kernel.

        Same semantics as the constructor's ``kernel`` / ``batch_max`` /
        ``batch_buckets`` parameters; :attr:`config` reflects the new
        settings, so process workers rebuilt from it match. Changing the
        kernel never changes output — every registered batched kernel is
        bit-identical to its per-pair fallback — except for the
        ``reference``/``scalar`` kernels, which run unbanded.
        """
        import inspect

        self._kernel_arg = kernel
        self.batch_max = batch_max
        self.batch_buckets = batch_buckets
        if kernel == "auto":
            kernel = DEFAULT_KERNEL if self.engine_name == "manymap" else None
        self.kernel_name = kernel
        if kernel is not None:
            eff_max = batch_max if batch_max is not None else self.preset.batch_max
            if not self.batch_segments:
                eff_max = 0  # disable cross-read batching, keep dispatch
            self._dispatch: Optional[KernelDispatch] = KernelDispatch(
                kernel,
                scoring=self.preset.scoring,
                batch_max=eff_max,
                batch_buckets=(
                    batch_buckets
                    if batch_buckets is not None
                    else self.preset.batch_buckets
                ),
            )
            self._banded = self._dispatch.banded
        else:
            self._dispatch = None
            # The vectorized kernels support banded DP (minimap2 -r); the
            # oracle/scalar engines do not, and silently run unbanded.
            self._banded = "band" in inspect.signature(self.engine).parameters

    @property
    def config(self) -> AlignerConfig:
        """Picklable construction parameters (index and genome excluded)."""
        return AlignerConfig(
            preset=self.preset,
            engine=self.engine_name,
            max_ext=self.max_ext,
            batch_segments=self.batch_segments,
            kernel=self._kernel_arg,
            batch_max=self.batch_max,
            batch_buckets=self.batch_buckets,
        )

    # ------------------------------------------------------------------ #

    def seed_and_chain(self, read: SeqRecord) -> "MappingPlan":
        """Phase 1 (paper stage "Seed & Chain"): anchors → chains."""
        COUNTERS.inc("reads_seeded")
        arrays = collect_anchors(read.codes, self.index, as_arrays=True)
        chains = chain_anchors(*arrays, params=self.preset.chain)
        if not chains:
            COUNTERS.inc("reads_dropped_no_chain")
            return MappingPlan([], [], [])
        primary, secondary = select_chains(chains, self.preset.mask_level)
        if not primary:
            COUNTERS.inc("reads_dropped_no_primary")
        return MappingPlan(chains, primary, secondary)

    def align_plan(
        self,
        read: SeqRecord,
        plan: "MappingPlan",
        with_cigar: bool = True,
        max_secondary: int = 0,
    ) -> List[Alignment]:
        """Phase 2 (paper stage "Align"): base-level gap fill + extension."""
        return self.align_plans(
            [(read, plan)], with_cigar=with_cigar, max_secondary=max_secondary
        )[0]

    def align_plans(
        self,
        items: Sequence[tuple],
        with_cigar: bool = True,
        max_secondary: int = 0,
    ) -> List[List[Alignment]]:
        """Align many ``(read, plan)`` pairs, pooling their DP jobs.

        With a cross-read kernel selected, every chain of every read
        contributes its extension and gap-segment jobs to one dispatch
        call, so the wavefront kernel sees chunk-wide buckets. Results
        are identical to per-read :meth:`align_plan` calls — batched
        kernels are bit-identical to their per-pair fallback — only the
        grouping (and therefore throughput) changes.
        """
        prepared = []  # (read, plan, [(chain, is_primary, _ChainPlan|None)])
        pooled_jobs: List[DPJob] = []
        pooling = self._dispatch is not None
        for read, plan in items:
            entries = []
            for chain in plan.primary + plan.secondary[:max_secondary]:
                is_primary = any(c is chain for c in plan.primary)
                cp = self._plan_chain(read.codes, chain, with_cigar)
                if cp is not None and pooling:
                    cp.job_base = len(pooled_jobs)
                    pooled_jobs.extend(cp.jobs)
                entries.append((chain, is_primary, cp))
            prepared.append((read, plan, entries))

        if pooling:
            pooled_results = self._dispatch.run(pooled_jobs)

        out: List[List[Alignment]] = []
        for read, plan, entries in prepared:
            alns: List[Alignment] = []
            for chain, is_primary, cp in entries:
                ca = None
                if cp is not None:
                    if pooling:
                        res = pooled_results[
                            cp.job_base : cp.job_base + len(cp.jobs)
                        ]
                    else:
                        res = self._execute_jobs_legacy(cp.jobs)
                    ca = self._assemble_chain(cp, res)
                if ca is None:
                    COUNTERS.inc("chains_align_failed")
                    continue
                aln = self._finalize(read, chain, plan.chains, ca, is_primary)
                alns.append(aln)
            alns.sort(key=lambda a: (-int(a.is_primary), -a.score))
            COUNTERS.inc("alignments_emitted", len(alns))
            out.append(alns)
        return out

    def map_read(
        self,
        read: SeqRecord,
        with_cigar: bool = True,
        max_secondary: int = 0,
    ) -> List[Alignment]:
        """Map one read; returns alignments sorted best-first.

        Primary chains each yield one alignment; up to ``max_secondary``
        secondary chains are reported with ``is_primary=False``.
        """
        plan = self.seed_and_chain(read)
        return self.align_plan(
            read, plan, with_cigar=with_cigar, max_secondary=max_secondary
        )

    def map_batch(
        self, reads: Sequence[SeqRecord], with_cigar: bool = True
    ) -> List[List[Alignment]]:
        """Map a batch of reads sequentially (see runtime.* for pipelines)."""
        return [self.map_read(r, with_cigar=with_cigar) for r in reads]

    # ------------------------------------------------------------------ #

    def _finalize(
        self,
        read: SeqRecord,
        chain: Chain,
        all_chains: Sequence[Chain],
        ca: "_ChainAlignment",
        is_primary: bool,
    ) -> Alignment:
        qlen = int(read.codes.size)
        if chain.strand == 0:
            qstart, qend = ca.qstart, ca.qend
        else:
            qstart, qend = qlen - ca.qend, qlen - ca.qstart
        n_match, block_len = self._match_stats(read.codes, chain, ca)
        mapq = estimate_mapq(chain, [c for c in all_chains if c is not chain])
        return Alignment(
            qname=read.name,
            qlen=qlen,
            qstart=qstart,
            qend=qend,
            strand=1 if chain.strand == 0 else -1,
            tname=self.index.names[chain.rid],
            tlen=int(self.index.lengths[chain.rid]),
            tstart=ca.tstart,
            tend=ca.tend,
            n_match=n_match,
            block_len=block_len,
            mapq=mapq if is_primary else 0,
            score=ca.score,
            cigar=ca.cigar,
            is_primary=is_primary,
            tags={"chain_score": chain.score, "n_anchors": chain.n_anchors},
        )

    def _match_stats(self, codes, chain, ca) -> tuple:
        if ca.cigar is None or len(ca.cigar) == 0:
            span = ca.tend - ca.tstart
            return span, span
        qseq = codes if chain.strand == 0 else revcomp_codes(codes)
        tseq = self.genome.chromosomes[chain.rid].codes
        t_sub = tseq[ca.tstart : ca.tend]
        q_sub = qseq[ca.qstart : ca.qend]
        ti = qi = 0
        matches = 0
        block = 0
        for n, op in ca.cigar.ops:
            if op == "M":
                matches += int((t_sub[ti : ti + n] == q_sub[qi : qi + n]).sum())
                ti += n
                qi += n
                block += n
            elif op == "D":
                ti += n
                block += n
            elif op == "I":
                qi += n
                block += n
        return matches, block

    # ------------------------------------------------------------------ #
    # Planning: one chain → a static DPJob list + assembly metadata.

    def _plan_chain(
        self, codes: np.ndarray, chain: Chain, with_cigar: bool
    ) -> Optional[_ChainPlan]:
        """Plan the gap fills and extensions for one chain (no DP yet)."""
        k = self.index.k
        scoring = self.preset.scoring
        qseq = codes if chain.strand == 0 else revcomp_codes(codes)
        tseq = self.genome.chromosomes[chain.rid].codes
        anchors = chain.anchors

        # First anchor k-mer: exact match by construction. Under HPC
        # seeding only the k-mer's FINAL base is guaranteed to match in
        # original coordinates (runs may differ in length), so the
        # anchored exact block shrinks to one base.
        klen = 1 if self.index.hpc else k
        t0, q0 = anchors[0]
        if q0 - klen + 1 < 0 or t0 - klen + 1 < 0:
            return None  # defensive: malformed anchor
        static_score = klen * scoring.match

        ext_band = self.preset.chain.bandwidth if self._banded else None
        jobs: List[DPJob] = []

        # Left extension before the first anchor (inputs pre-reversed;
        # extension DP is symmetric under joint reversal).
        lt0 = t0 - klen + 1
        lq0 = q0 - klen + 1
        ext_t0 = max(0, lt0 - min(self.max_ext, lq0 + self.preset.chain.bandwidth))
        jobs.append(
            DPJob(
                target=tseq[ext_t0:lt0][::-1].copy(),
                query=qseq[max(0, lq0 - self.max_ext) : lq0][::-1].copy(),
                mode="extend",
                path=with_cigar,
                zdrop=scoring.zdrop,
                band=ext_band,
            )
        )

        # Inter-anchor segments (global alignment of each gap). Exact
        # segments short-circuit to an M run; the rest become DP jobs.
        mid_plan: List[tuple] = []  # ("M", dt) | ("DP", local_job_index)
        prev_t, prev_q = t0, q0
        for t_i, q_i in anchors[1:]:
            dt, dq = t_i - prev_t, q_i - prev_q
            tseg = tseq[prev_t + 1 : t_i + 1]
            qseg = qseq[prev_q + 1 : q_i + 1]
            if dt == dq and np.array_equal(tseg, qseg) and (tseg < AMBIG).all():
                mid_plan.append(("M", dt))
                static_score += dt * scoring.match
            else:
                band = None
                if self._banded and max(tseg.size, qseg.size) > self._SEG_UNBANDED_MAX:
                    # Chained anchors bound the off-diagonal drift, so a
                    # corridor of the length difference plus slack is
                    # exact in practice.
                    band = abs(tseg.size - qseg.size) + 64
                mid_plan.append(("DP", len(jobs)))
                jobs.append(
                    DPJob(
                        target=tseg,
                        query=qseg,
                        mode="global",
                        path=with_cigar,
                        band=band,
                    )
                )
            prev_t, prev_q = t_i, q_i

        # Right extension past the last anchor.
        rq0 = prev_q + 1
        rt0 = prev_t + 1
        q_tail = qseq[rq0:]
        t_hi = min(tseq.size, rt0 + q_tail.size + self.preset.chain.bandwidth)
        jobs.append(
            DPJob(
                target=tseq[rt0:t_hi],
                query=q_tail,
                mode="extend",
                path=with_cigar,
                zdrop=scoring.zdrop,
                band=ext_band,
            )
        )

        return _ChainPlan(
            with_cigar=with_cigar,
            klen=klen,
            static_score=static_score,
            lt0=lt0,
            lq0=lq0,
            rt0=rt0,
            rq0=rq0,
            mid_plan=mid_plan,
            jobs=jobs,
        )

    def _assemble_chain(
        self, cp: "_ChainPlan", results: Sequence
    ) -> Optional[_ChainAlignment]:
        """Stitch executed DP results back into one chain alignment."""
        with_cigar = cp.with_cigar
        left_job = cp.jobs[0]
        left = finish_extension(
            results[0], left_job.target.size, left_job.query.size, with_cigar
        )
        score = cp.static_score + left.score
        tstart = cp.lt0 - left.t_used
        qstart = cp.lq0 - left.q_used
        left_ops = (
            list(reversed(left.cigar.ops)) if with_cigar and left.cigar else []
        )

        mid_ops: List = []
        for kind, payload in cp.mid_plan:
            if kind == "M":
                mid_ops.append((payload, "M"))
            else:
                res = results[payload]
                score += res.score
                if with_cigar:
                    mid_ops.extend(res.cigar.ops)

        right_job = cp.jobs[-1]
        right = finish_extension(
            results[len(cp.jobs) - 1],
            right_job.target.size,
            right_job.query.size,
            with_cigar,
        )
        tend = cp.rt0 + right.t_used
        qend = cp.rq0 + right.q_used
        score += right.score
        right_ops = list(right.cigar.ops) if with_cigar and right.cigar else []

        cigar = None
        if with_cigar:
            cigar = Cigar(
                left_ops + [(cp.klen, "M")] + mid_ops + right_ops
            ).merged()
        return _ChainAlignment(
            score=int(score),
            cigar=cigar,
            tstart=int(tstart),
            tend=int(tend),
            qstart=int(qstart),
            qend=int(qend),
        )

    # ------------------------------------------------------------------ #
    # Legacy executor: per-pair engine + the old per-chain segment
    # bucketing, used when no dispatch kernel is selected.

    _BATCH_MAX = 192
    _BATCH_BUCKETS = (24, 48, 96, 192)

    def _execute_jobs_legacy(self, jobs: Sequence[DPJob]) -> List:
        results: List = [None] * len(jobs)
        seg_idx = [i for i, j in enumerate(jobs) if j.mode == "global"]
        singles: List[int] = []
        if self.batch_segments:
            buckets: dict = {}
            for i in seg_idx:
                size = jobs[i].size
                if size > self._BATCH_MAX:
                    singles.append(i)
                    continue
                for cap in self._BATCH_BUCKETS:
                    if size <= cap:
                        buckets.setdefault(cap, []).append(i)
                        break
            for cap, idxs in buckets.items():
                if len(idxs) == 1:
                    singles.extend(idxs)
                    continue
                out = align_batch(
                    [jobs[i].target for i in idxs],
                    [jobs[i].query for i in idxs],
                    self.preset.scoring,
                    path=jobs[idxs[0]].path,
                )
                for i, res in zip(idxs, out):
                    results[i] = res
        else:
            singles = seg_idx
        n_batched = len(seg_idx) - len(singles)
        if n_batched:
            COUNTERS.inc("segments_batched", n_batched)
        if singles:
            COUNTERS.inc("segments_fallback", len(singles))
        for i in singles:
            job = jobs[i]
            kwargs = {}
            if self._banded:
                kwargs["band"] = abs(job.target.size - job.query.size) + 64
            results[i] = self.engine(
                job.target,
                job.query,
                self.preset.scoring,
                mode="global",
                path=job.path,
                **kwargs,
            )
        for i, job in enumerate(jobs):
            if job.mode != "extend":
                continue
            kwargs = {}
            if job.band is not None and self._banded:
                kwargs["band"] = job.band
            results[i] = self.engine(
                job.target,
                job.query,
                self.preset.scoring,
                mode="extend",
                path=job.path,
                zdrop=job.zdrop,
                **kwargs,
            )
        return results
