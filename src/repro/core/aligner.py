"""The manymap/minimap2 aligner: seed → chain → extend.

``Aligner.map_read`` runs the full pipeline of §3.1 for one read:

1. **Seed** — extract query minimizers, look them up in the reference
   index (anchors).
2. **Chain** — cluster anchors into colinear chains with the chaining
   DP; pick primary chains.
3. **Extend** — fill inter-anchor gaps with global base-level DP and
   extend past the terminal anchors with z-drop extension, stitching
   the per-segment CIGARs into the final alignment.

The base-level step takes any engine from :mod:`repro.align.engine`, so
the minimap2-layout and manymap-layout kernels are interchangeable and
— by the engine-equivalence property — produce identical alignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..align.cigar import Cigar
from ..align.engine import get_engine
from ..align.extend import extend_alignment
from ..chain.anchors import collect_anchors
from ..chain.chain import Chain, chain_anchors
from ..chain.select import estimate_mapq, select_chains
from ..errors import AlignmentError
from ..index.index import MinimizerIndex, build_index
from ..obs.counters import COUNTERS
from ..seq.alphabet import AMBIG, revcomp_codes
from ..seq.genome import Genome
from ..seq.records import SeqRecord
from .alignment import Alignment
from .presets import Preset, get_preset


@dataclass(frozen=True)
class AlignerConfig:
    """Picklable recipe for rebuilding an :class:`Aligner` elsewhere.

    The process-parallel backend (:mod:`repro.runtime.procpool`) ships
    one of these to each worker instead of the aligner itself: the
    config plus the genome pickle in ~hundreds of bytes/kilobytes,
    while the minimizer index — the heavy part — is reopened from its
    serialized file in ``mmap`` mode so all workers share the same
    page-cache copy.
    """

    preset: Preset
    engine: str = "manymap"
    max_ext: int = 2000
    batch_segments: bool = True

    def build(
        self, genome: Genome, index: Optional[MinimizerIndex] = None
    ) -> "Aligner":
        """Reconstruct the aligner (optionally over a preloaded index)."""
        return Aligner(
            genome,
            preset=self.preset,
            engine=self.engine,
            index=index,
            max_ext=self.max_ext,
            batch_segments=self.batch_segments,
        )


@dataclass
class MappingPlan:
    """Output of the seed-and-chain phase, input to the align phase."""

    chains: List[Chain]
    primary: List[Chain]
    secondary: List[Chain]

    @property
    def mapped(self) -> bool:
        return bool(self.primary)


@dataclass
class _ChainAlignment:
    """Internal: a chain turned into a base-level alignment (RC frame)."""

    score: int
    cigar: Cigar
    tstart: int
    tend: int  # exclusive
    qstart: int  # RC frame when strand == 1
    qend: int  # exclusive


class Aligner:
    """Long-read aligner over a prebuilt or freshly built minimizer index.

    Parameters
    ----------
    genome:
        The reference; required for base-level alignment.
    preset:
        Name ('map-pb', 'map-ont', 'test') or a :class:`Preset`.
    engine:
        Base-level DP engine name ('manymap', 'mm2', 'scalar',
        'reference'). Default is the paper's revised kernel.
    index:
        Reuse an existing :class:`MinimizerIndex` (must match the
        preset's k and w) instead of building one.
    """

    #: path of the serialized index this aligner was opened from, when
    #: known (set by :func:`repro.api.open_index`); process-backed
    #: mapping reuses it so workers mmap the same file zero-copy.
    index_source: Optional[str] = None

    def __init__(
        self,
        genome: Genome,
        preset: Union[str, Preset] = "map-pb",
        engine: str = "manymap",
        index: Optional[MinimizerIndex] = None,
        max_ext: int = 2000,
        batch_segments: bool = True,
    ) -> None:
        import inspect

        self.batch_segments = batch_segments
        self.genome = genome
        self.preset = get_preset(preset) if isinstance(preset, str) else preset
        self.engine_name = engine
        self.engine = get_engine(engine)
        # The vectorized kernels support banded DP (minimap2 -r); the
        # oracle/scalar engines do not, and silently run unbanded.
        self._banded = "band" in inspect.signature(self.engine).parameters
        if index is not None:
            if (
                index.k != self.preset.k
                or index.w != self.preset.w
                or index.hpc != self.preset.hpc
            ):
                raise AlignmentError(
                    f"index (k={index.k}, w={index.w}, hpc={index.hpc}) does "
                    f"not match preset (k={self.preset.k}, w={self.preset.w}, "
                    f"hpc={self.preset.hpc})"
                )
            self.index = index
        else:
            self.index = build_index(
                genome,
                k=self.preset.k,
                w=self.preset.w,
                occ_filter_frac=self.preset.occ_filter_frac,
                hpc=self.preset.hpc,
            )
        self.max_ext = max_ext

    @property
    def config(self) -> AlignerConfig:
        """Picklable construction parameters (index and genome excluded)."""
        return AlignerConfig(
            preset=self.preset,
            engine=self.engine_name,
            max_ext=self.max_ext,
            batch_segments=self.batch_segments,
        )

    # ------------------------------------------------------------------ #

    def seed_and_chain(self, read: SeqRecord) -> "MappingPlan":
        """Phase 1 (paper stage "Seed & Chain"): anchors → chains."""
        COUNTERS.inc("reads_seeded")
        arrays = collect_anchors(read.codes, self.index, as_arrays=True)
        chains = chain_anchors(*arrays, params=self.preset.chain)
        if not chains:
            COUNTERS.inc("reads_dropped_no_chain")
            return MappingPlan([], [], [])
        primary, secondary = select_chains(chains, self.preset.mask_level)
        if not primary:
            COUNTERS.inc("reads_dropped_no_primary")
        return MappingPlan(chains, primary, secondary)

    def align_plan(
        self,
        read: SeqRecord,
        plan: "MappingPlan",
        with_cigar: bool = True,
        max_secondary: int = 0,
    ) -> List[Alignment]:
        """Phase 2 (paper stage "Align"): base-level gap fill + extension."""
        out: List[Alignment] = []
        for chain in plan.primary + plan.secondary[:max_secondary]:
            is_primary = any(c is chain for c in plan.primary)
            aln = self._finalize(read, chain, plan.chains, with_cigar, is_primary)
            if aln is not None:
                out.append(aln)
            else:
                COUNTERS.inc("chains_align_failed")
        out.sort(key=lambda a: (-int(a.is_primary), -a.score))
        COUNTERS.inc("alignments_emitted", len(out))
        return out

    def map_read(
        self,
        read: SeqRecord,
        with_cigar: bool = True,
        max_secondary: int = 0,
    ) -> List[Alignment]:
        """Map one read; returns alignments sorted best-first.

        Primary chains each yield one alignment; up to ``max_secondary``
        secondary chains are reported with ``is_primary=False``.
        """
        plan = self.seed_and_chain(read)
        return self.align_plan(
            read, plan, with_cigar=with_cigar, max_secondary=max_secondary
        )

    def map_batch(
        self, reads: Sequence[SeqRecord], with_cigar: bool = True
    ) -> List[List[Alignment]]:
        """Map a batch of reads sequentially (see runtime.* for pipelines)."""
        return [self.map_read(r, with_cigar=with_cigar) for r in reads]

    # ------------------------------------------------------------------ #

    def _finalize(
        self,
        read: SeqRecord,
        chain: Chain,
        all_chains: Sequence[Chain],
        with_cigar: bool,
        is_primary: bool,
    ) -> Optional[Alignment]:
        ca = self._align_chain(read.codes, chain, with_cigar)
        if ca is None:
            return None
        qlen = int(read.codes.size)
        if chain.strand == 0:
            qstart, qend = ca.qstart, ca.qend
        else:
            qstart, qend = qlen - ca.qend, qlen - ca.qstart
        n_match, block_len = self._match_stats(read.codes, chain, ca)
        mapq = estimate_mapq(chain, [c for c in all_chains if c is not chain])
        return Alignment(
            qname=read.name,
            qlen=qlen,
            qstart=qstart,
            qend=qend,
            strand=1 if chain.strand == 0 else -1,
            tname=self.index.names[chain.rid],
            tlen=int(self.index.lengths[chain.rid]),
            tstart=ca.tstart,
            tend=ca.tend,
            n_match=n_match,
            block_len=block_len,
            mapq=mapq if is_primary else 0,
            score=ca.score,
            cigar=ca.cigar if with_cigar else None,
            is_primary=is_primary,
            tags={"chain_score": chain.score, "n_anchors": chain.n_anchors},
        )

    def _match_stats(self, codes, chain, ca) -> tuple:
        if ca.cigar is None or len(ca.cigar) == 0:
            span = ca.tend - ca.tstart
            return span, span
        qseq = codes if chain.strand == 0 else revcomp_codes(codes)
        tseq = self.genome.chromosomes[chain.rid].codes
        t_sub = tseq[ca.tstart : ca.tend]
        q_sub = qseq[ca.qstart : ca.qend]
        ti = qi = 0
        matches = 0
        block = 0
        for n, op in ca.cigar.ops:
            if op == "M":
                matches += int((t_sub[ti : ti + n] == q_sub[qi : qi + n]).sum())
                ti += n
                qi += n
                block += n
            elif op == "D":
                ti += n
                block += n
            elif op == "I":
                qi += n
                block += n
        return matches, block

    #: segments whose longer side is at most this go through the batched
    #: kernel, bucketed by padded size so one long outlier cannot inflate
    #: the whole batch's padding.
    _BATCH_MAX = 192
    _BATCH_BUCKETS = (24, 48, 96, 192)

    def _run_segments(
        self,
        batch_t: List[np.ndarray],
        batch_q: List[np.ndarray],
        scoring,
        with_cigar: bool,
    ) -> List:
        """Align gap segments: size-bucketed batches + per-pair fallback."""
        if not batch_t:
            return []
        results: List = [None] * len(batch_t)
        singles: List[int] = []
        if self.batch_segments:
            buckets: dict = {}
            for i, (tseg, qseg) in enumerate(zip(batch_t, batch_q)):
                size = max(tseg.size, qseg.size)
                if size > self._BATCH_MAX:
                    singles.append(i)
                    continue
                for cap in self._BATCH_BUCKETS:
                    if size <= cap:
                        buckets.setdefault(cap, []).append(i)
                        break
            from ..align.batch_kernel import align_batch

            for cap, idxs in buckets.items():
                if len(idxs) == 1:
                    singles.extend(idxs)
                    continue
                out = align_batch(
                    [batch_t[i] for i in idxs],
                    [batch_q[i] for i in idxs],
                    scoring,
                    path=with_cigar,
                )
                for i, res in zip(idxs, out):
                    results[i] = res
        else:
            singles = list(range(len(batch_t)))
        n_batched = len(batch_t) - len(singles)
        if n_batched:
            COUNTERS.inc("segments_batched", n_batched)
        if singles:
            COUNTERS.inc("segments_fallback", len(singles))
        for i in singles:
            tseg, qseg = batch_t[i], batch_q[i]
            kwargs = {}
            if self._banded:
                # Chained anchors bound the off-diagonal drift, so a
                # corridor of the length difference plus slack is exact
                # in practice.
                kwargs["band"] = abs(tseg.size - qseg.size) + 64
            results[i] = self.engine(
                tseg, qseg, scoring, mode="global", path=with_cigar, **kwargs
            )
        return results

    def _align_chain(
        self, codes: np.ndarray, chain: Chain, with_cigar: bool
    ) -> Optional[_ChainAlignment]:
        """Fill gaps between anchors and extend past the chain ends."""
        k = self.index.k
        scoring = self.preset.scoring
        qseq = codes if chain.strand == 0 else revcomp_codes(codes)
        tseq = self.genome.chromosomes[chain.rid].codes
        anchors = chain.anchors

        ops: List = []
        score = 0

        # First anchor k-mer: exact match by construction. Under HPC
        # seeding only the k-mer's FINAL base is guaranteed to match in
        # original coordinates (runs may differ in length), so the
        # anchored exact block shrinks to one base.
        klen = 1 if self.index.hpc else k
        t0, q0 = anchors[0]
        if q0 - klen + 1 < 0 or t0 - klen + 1 < 0:
            return None  # defensive: malformed anchor
        ops.append((klen, "M"))
        score += klen * scoring.match

        # Left extension before the first anchor.
        lt0 = t0 - klen + 1
        lq0 = q0 - klen + 1
        ext_t0 = max(0, lt0 - min(self.max_ext, lq0 + self.preset.chain.bandwidth))
        ext_band = self.preset.chain.bandwidth if self._banded else None
        left = extend_alignment(
            tseq[ext_t0:lt0][::-1].copy(),
            qseq[max(0, lq0 - self.max_ext) : lq0][::-1].copy(),
            scoring,
            engine=self.engine,
            path=with_cigar,
            zdrop=scoring.zdrop,
            band=ext_band,
        )
        tstart = lt0 - left.t_used
        qstart = lq0 - left.q_used
        score += left.score
        left_ops = (
            list(reversed(left.cigar.ops)) if with_cigar and left.cigar else []
        )

        # Inter-anchor segments (global alignment of each gap). Exact
        # segments short-circuit; the rest either go through the batched
        # inter-sequence kernel (SWIPE-style, the fast path) or the
        # configured per-pair engine.
        mid_plan: List = []  # ("M", dt) | ("DP", index_into_batch)
        batch_t: List[np.ndarray] = []
        batch_q: List[np.ndarray] = []
        prev_t, prev_q = t0, q0
        for t_i, q_i in anchors[1:]:
            dt, dq = t_i - prev_t, q_i - prev_q
            tseg = tseq[prev_t + 1 : t_i + 1]
            qseg = qseq[prev_q + 1 : q_i + 1]
            if dt == dq and np.array_equal(tseg, qseg) and (tseg < AMBIG).all():
                mid_plan.append(("M", dt))
                score += dt * scoring.match
            else:
                mid_plan.append(("DP", len(batch_t)))
                batch_t.append(tseg)
                batch_q.append(qseg)
            prev_t, prev_q = t_i, q_i

        seg_results = self._run_segments(batch_t, batch_q, scoring, with_cigar)
        mid_ops: List = []
        for kind, payload in mid_plan:
            if kind == "M":
                mid_ops.append((payload, "M"))
            else:
                res = seg_results[payload]
                score += res.score
                if with_cigar:
                    mid_ops.extend(res.cigar.ops)

        # Right extension past the last anchor.
        rq0 = prev_q + 1
        rt0 = prev_t + 1
        q_tail = qseq[rq0:]
        t_hi = min(
            tseq.size, rt0 + q_tail.size + self.preset.chain.bandwidth
        )
        right = extend_alignment(
            tseq[rt0:t_hi],
            q_tail,
            scoring,
            engine=self.engine,
            path=with_cigar,
            zdrop=scoring.zdrop,
            band=ext_band,
        )
        tend = rt0 + right.t_used
        qend = rq0 + right.q_used
        score += right.score
        right_ops = list(right.cigar.ops) if with_cigar and right.cigar else []

        cigar = None
        if with_cigar:
            cigar = Cigar(left_ops + ops + mid_ops + right_ops).merged()
        return _ChainAlignment(
            score=int(score),
            cigar=cigar,
            tstart=int(tstart),
            tend=int(tend),
            qstart=int(qstart),
            qend=int(qend),
        )
