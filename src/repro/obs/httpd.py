"""Shared HTTP plumbing for the in-process servers.

Two front-ends serve HTTP out of a mapping process: the per-run status
daemon (:mod:`repro.obs.statusd`, threaded ``http.server``) and the
long-lived ``repro serve`` front-end (:mod:`repro.serve.server`,
asyncio). Both mount the same observability surface and share the same
bind-and-own-a-port lifecycle, so that lives here exactly once:

:func:`obs_route`
    The framework-neutral router for the observability endpoints —
    ``/metrics`` (OpenMetrics), ``/status`` (JSON heartbeat),
    ``/events`` (event-ring tail), ``/healthz`` and ``/`` (liveness).
    It maps ``(path, query)`` to ``(code, content_type, body_bytes)``
    and returns ``None`` for paths it does not own, so each server
    layers its own routes (serve adds ``POST /map``) on top without
    duplicating the scrape logic.

:class:`DaemonHTTPServer`
    The bind/port-0/daemon-thread lifecycle for ``http.server``-based
    daemons: ``port=0`` asks the OS for a free port (read ``.port`` /
    ``.url`` after ``start()``), serving happens on daemon threads, and
    ``stop()`` is an idempotent shutdown+join. :class:`StatusServer
    <repro.obs.statusd.StatusServer>` is this plus the obs routes; the
    asyncio serve front-end reuses the same port-0 semantics through
    ``asyncio.start_server`` but routes through :func:`obs_route` too.
"""

from __future__ import annotations

import json
import threading
from http.server import ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs

from .events import EVENTS
from .export import (
    OPENMETRICS_CONTENT_TYPE,
    RunSampler,
    render_openmetrics,
    status_record,
)
from .logs import get_logger

__all__ = [
    "DaemonHTTPServer",
    "json_reply",
    "obs_route",
    "text_reply",
]

TEXT_CONTENT_TYPE = "text/plain; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


def text_reply(code: int, text: str) -> Tuple[int, str, bytes]:
    return code, TEXT_CONTENT_TYPE, text.encode("utf-8")


def json_reply(code: int, doc) -> Tuple[int, str, bytes]:
    body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
    return code, JSON_CONTENT_TYPE, body


def obs_route(
    sampler: RunSampler, path: str, query: str = "", traces=None
) -> Optional[Tuple[int, str, bytes]]:
    """Route one GET against the observability surface.

    Returns ``(status_code, content_type, body)`` for the endpoints
    this surface owns, ``None`` for anything else (the caller serves
    its own routes or a 404). ``sampler`` is the server's live
    :class:`RunSampler`; requests sample the same lock-free shards the
    progress heartbeat samples, so scraping never touches the mapping
    hot path.

    ``traces`` (a :class:`repro.obs.tracing.TraceStore`, optional)
    adds the tracing surface: ``GET /traces?slowest=N`` lists kept
    traces, ``GET /trace/<id>`` returns one span tree
    (``?format=chrome`` for a Chrome-trace document), ``/metrics``
    gains OpenMetrics exemplars linking latency buckets to trace ids,
    and ``/status`` grows a ``tracing`` block.
    """
    route = path.rstrip("/") or "/"
    if route == "/metrics":
        from .tracing import TRACER

        body = render_openmetrics(
            sampler.counters(),
            sampler.gauges(),
            sampler.histograms(),
            exemplars=TRACER.exemplars() if traces is not None else None,
        ).encode("utf-8")
        return 200, OPENMETRICS_CONTENT_TYPE, body
    if route == "/status":
        rec = status_record(sampler)
        if traces is not None:
            rec["tracing"] = traces.summary()
        return json_reply(200, rec)
    if traces is not None and route == "/traces":
        q = parse_qs(query)
        try:
            n = int(q.get("slowest", ["10"])[0])
        except (IndexError, ValueError):
            n = 10
        return json_reply(
            200,
            {
                "record": "traces",
                "summary": traces.summary(),
                "traces": traces.slowest(n),
            },
        )
    if traces is not None and route.startswith("/trace/"):
        trace_id = route[len("/trace/"):]
        doc = traces.get(trace_id)
        if doc is None:
            return json_reply(404, {"error": f"no trace {trace_id!r}"})
        fmt = parse_qs(query).get("format", [""])[0]
        if fmt == "chrome":
            from .tracing import trace_chrome

            return json_reply(200, trace_chrome(doc))
        return json_reply(200, doc)
    if route == "/events":
        q = parse_qs(query)

        def _int(key: str, default):
            try:
                return int(q[key][0])
            except (KeyError, IndexError, ValueError):
                return default

        events = EVENTS.recent(
            limit=_int("limit", 100),
            kind=q.get("kind", [None])[0],
            after_seq=_int("after_seq", 0),
        )
        return json_reply(
            200,
            {
                "record": "events",
                "run_id": sampler.run_id,
                "seq": EVENTS.seq,
                "counts": EVENTS.counts(),
                "dropped": EVENTS.dropped,
                "events": events,
            },
        )
    if route in ("/", "/healthz"):
        return text_reply(200, "ok\n")
    return None


class DaemonHTTPServer:
    """Own a ``ThreadingHTTPServer`` on a daemon thread; a context manager.

    ``port=0`` binds an OS-assigned free port; read :attr:`port` (or
    :attr:`url`) after :meth:`start` for the real one. Serving happens
    on daemon threads, so a crashed or interrupted run never hangs on
    the server. Subclasses pass their ``BaseHTTPRequestHandler`` class
    and may attach shared state to the underlying server object in
    :meth:`_configure`.
    """

    handler_class = None  # subclasses set this
    log_name = "httpd"

    def __init__(self, port: int = 0, host: str = "127.0.0.1") -> None:
        if port < 0 or port > 65535:
            raise ValueError(f"port must be in [0, 65535]: {port}")
        self._requested = (host, int(port))
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._log = get_logger(self.log_name)

    # -- lifecycle ----------------------------------------------------- #

    @property
    def port(self) -> int:
        """The bound port (0 until :meth:`start`)."""
        return self._httpd.server_address[1] if self._httpd else 0

    @property
    def url(self) -> str:
        host = self._requested[0]
        return f"http://{host}:{self.port}" if self._httpd else ""

    def _configure(self, httpd: ThreadingHTTPServer) -> None:
        """Attach per-server state before the serving thread starts."""

    def start(self) -> "DaemonHTTPServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer(self._requested, self.handler_class)
        httpd.daemon_threads = True
        self._configure(httpd)
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name=self.log_name,
            daemon=True,
            kwargs={"poll_interval": 0.1},
        )
        self._thread.start()
        self._log.info("%s listening on %s", self.log_name, self.url)
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread; idempotent."""
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is None:
            return
        httpd.shutdown()
        if thread is not None:
            thread.join()
        httpd.server_close()

    def __enter__(self) -> "DaemonHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
