"""Chrome-trace / Perfetto timeline export of a mapping run.

``manymap map --timeline out.json`` converts the run's per-read trace
spans into trace-event JSON (the ``chrome://tracing`` / Perfetto
format): one lane per worker (``pid`` = OS process, ``tid`` = pool
thread), one complete ("X") slice per pipeline stage per read, a
per-worker *chunks* sub-lane showing scheduling-chunk extents, and
instant ("i") markers for faults the run absorbed. Loaded into
Perfetto, the lanes make pipeline overlap — the paper's Fig. 11
argument — directly visible: a fully overlapped run shows dense,
gap-free worker lanes; a stalled stage shows as white space.

Span records carry a wall-clock start (``ts``, epoch seconds, shared
across worker processes) plus per-stage durations; the exporter
rebases everything to microseconds from the earliest event, sorts each
lane, and clamps sub-microsecond clock skew so per-lane timestamps are
strictly non-decreasing — a documented invariant tests rely on.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["chrome_document", "trace_events", "build_timeline", "write_timeline"]

#: Stage keys inside a span record, in execution order.
_STAGES = ("seed_chain", "align")

#: tid offset for the per-worker "chunks" sub-lane.
_CHUNK_LANE = 1000


def _lane(worker: str) -> Tuple[int, str]:
    """``(pid, thread-name)`` from a ``pid:4242/ThreadName`` worker id."""
    if worker.startswith("pid:") and "/" in worker:
        head, thread = worker.split("/", 1)
        try:
            return int(head[4:]), thread
        except ValueError:
            pass
    return 0, worker or "?"


def trace_events(
    spans: Iterable[Dict],
    faults: Iterable = (),
    label: str = "",
) -> List[Dict]:
    """Convert span records (+ fault records) into trace events.

    Returns the ``traceEvents`` list: metadata ("M") lane names, per
    stage-per-read complete ("X") slices, per-worker chunk extents on a
    ``chunks`` sub-lane, and global instant ("i") fault markers.
    Timestamps are microseconds rebased to the earliest span start and
    clamped non-decreasing per lane.
    """
    lanes: Dict[Tuple[int, str], List[Dict]] = {}
    chunk_extent: Dict[Tuple[int, str, int], List[float]] = {}
    t0: Optional[float] = None

    for span in spans:
        ts = span.get("ts")
        if ts is None:
            continue  # pre-timeline span record: nothing to place
        durs = span.get("spans", {})
        pid, thread = _lane(str(span.get("worker", "")))
        start = float(ts)
        if t0 is None or start < t0:
            t0 = start
        events = lanes.setdefault((pid, thread), [])
        at = start
        for stage in _STAGES:
            dur = float(durs.get(stage, 0.0))
            events.append(
                {
                    "name": stage,
                    "ph": "X",
                    "ts": at,
                    "dur": dur,
                    "pid": pid,
                    "tid": thread,
                    "args": {
                        "read": span.get("read"),
                        "length": span.get("length"),
                        "chunk": span.get("chunk"),
                    },
                }
            )
            at += dur
        chunk = span.get("chunk")
        if chunk is not None:
            key = (pid, thread, int(chunk))
            ext = chunk_extent.get(key)
            if ext is None:
                chunk_extent[key] = [start, at]
            else:
                ext[0] = min(ext[0], start)
                ext[1] = max(ext[1], at)

    fault_events: List[Dict] = []
    for f in faults:
        ts = getattr(f, "ts", None) or 0.0
        if ts and (t0 is None or ts < t0):
            t0 = ts
        fault_events.append(
            {
                "name": f"{getattr(f, 'kind', 'fault')}:{getattr(f, 'read', '?')}",
                "ph": "i",
                "s": "g",
                "ts": ts,
                "pid": 0,
                "tid": "faults",
                "args": {
                    "action": getattr(f, "action", None),
                    "reason": getattr(f, "reason", None),
                    "attempts": getattr(f, "attempts", None),
                },
            }
        )

    if t0 is None:
        t0 = 0.0

    out: List[Dict] = []
    tids: Dict[Tuple[int, str], int] = {}
    seen_pids: Dict[int, None] = {}

    def tid_for(pid: int, thread: str) -> int:
        key = (pid, thread)
        if key not in tids:
            tid = len([k for k in tids if k[0] == pid]) + 1
            tids[key] = tid
            if pid not in seen_pids:
                seen_pids[pid] = None
                out.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {
                            "name": f"manymap worker pid:{pid}"
                            + (f" ({label})" if label else "")
                        },
                    }
                )
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        return tids[key]

    for (pid, thread), events in sorted(lanes.items()):
        tid = tid_for(pid, thread)
        events.sort(key=lambda e: e["ts"])
        prev_end = 0.0
        for e in events:
            ts_us = max((e["ts"] - t0) * 1e6, prev_end)
            dur_us = max(e["dur"] * 1e6, 0.0)
            prev_end = ts_us + dur_us
            e["ts"] = ts_us
            e["dur"] = dur_us
            e["tid"] = tid
            out.append(e)

    chunk_lanes_named = set()
    for (pid, thread, chunk), (start, end) in sorted(chunk_extent.items()):
        tid = tid_for(pid, thread)
        if (pid, thread) not in chunk_lanes_named:
            chunk_lanes_named.add((pid, thread))
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid + _CHUNK_LANE,
                    "args": {"name": f"{thread} chunks"},
                }
            )
        out.append(
            {
                "name": f"chunk {chunk}",
                "ph": "X",
                "ts": max((start - t0) * 1e6, 0.0),
                "dur": max((end - start) * 1e6, 0.0),
                "pid": pid,
                "tid": tid + _CHUNK_LANE,
                "args": {"chunk": chunk},
            }
        )

    for e in fault_events:
        e["ts"] = max((e["ts"] - t0) * 1e6, 0.0)
        e["tid"] = 0
        out.append(e)
    if fault_events:
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "faults"},
            }
        )
    return out


def chrome_document(
    events: Iterable[Dict],
    run_id: str = "",
    label: str = "",
    **other,
) -> Dict:
    """Wrap trace events in the standard Chrome-trace envelope.

    Shared by the per-run timeline exporter here and the per-trace
    exporter in :func:`repro.obs.tracing.trace_chrome`, so both emit
    documents with identical ``displayTimeUnit``/``otherData`` shape.
    """
    return {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "manymap",
            "run_id": run_id,
            "label": label,
            **other,
        },
    }


def build_timeline(
    spans: Iterable[Dict],
    faults: Iterable = (),
    run_id: str = "",
    gauges: Optional[Dict] = None,
    label: str = "",
) -> Dict:
    """The full trace-event JSON document (Perfetto-loadable)."""
    return chrome_document(
        trace_events(spans, faults, label=label),
        run_id=run_id,
        label=label,
        gauges=dict(gauges or {}),
    )


def write_timeline(
    path: str,
    spans: Iterable[Dict],
    faults: Iterable = (),
    run_id: str = "",
    gauges: Optional[Dict] = None,
    label: str = "",
) -> int:
    """Write the timeline JSON; returns the number of trace events."""
    doc = build_timeline(
        spans, faults, run_id=run_id, gauges=gauges, label=label
    )
    from ..utils.fsio import atomic_output

    with atomic_output(path) as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(doc["traceEvents"])
