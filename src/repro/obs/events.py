"""Bounded structured event bus: what the runtime *decided*, live.

Counters say how much work happened and histograms how it was
distributed; neither says *why* — which bucket the dispatch layer
chose for a chunk's DP jobs, why a job fell back to the per-pair
engine, that a process pool was respawned after a worker died, that a
read was quarantined. Those are discrete decisions, and the
Seed-Filter-Extend dataflow literature (PAPERS.md) treats exactly this
stage-level audit trail as the signal that drives pipeline tuning.

:class:`EventBus` keeps the most recent events in a fixed-size ring
(old events fall off the back — a multi-hour run cannot grow memory),
counts events by kind for the metrics manifest, and optionally mirrors
every event to a JSONL sink (``map --events FILE``). The process-global
:data:`EVENTS` bus is what the instrumented modules emit into:

* :mod:`repro.align.dispatch` — per-bucket batching decisions and
  per-pair fallbacks with their reason;
* :mod:`repro.runtime.faults` — pool respawns and (via
  :meth:`repro.obs.telemetry.Telemetry.record_faults`) quarantines and
  watchdog fallbacks;
* :mod:`repro.runtime.procpool` — chunk dispatch/completion;
* :mod:`repro.obs.progress` — heartbeats.

Emission happens at *decision* granularity (per chunk / per bucket /
per fault), never per read on the clean path and never per cell, so the
bus costs a dict build and a deque append under a lock — noise next to
one DP call. Worker *processes* carry their own module-level bus;
their events stay process-local (events are a live diagnostic stream,
not accounting — counters and histograms are what ships home), so on
the process backends the parent's bus holds the parent-side story:
chunk lifecycle, respawns, faults, heartbeats.

The ``/events`` endpoint of :mod:`repro.obs.statusd` serves the ring's
recent tail; ``Telemetry`` snapshots :meth:`EventBus.counts` at
construction so manifests carry run-scoped per-kind counts (schema v6).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["EventBus", "EVENTS"]


class EventBus:
    """A bounded ring of structured events + per-kind counts.

    ``capacity`` bounds the ring; the counts keep growing (they are a
    handful of ints). All methods are thread-safe; :meth:`emit` is the
    only one on any remotely warm path.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: "deque[Dict]" = deque(maxlen=capacity)
        self._counts: Dict[str, int] = {}
        self._seq = 0
        self._dropped = 0
        self._sink = None
        self._listeners: List = []

    # -- emission ------------------------------------------------------ #

    def emit(self, kind: str, **data) -> Dict:
        """Record one event; returns the record that was stored.

        The record carries a monotonically increasing ``seq`` (so a
        poller can detect what it already saw even after ring
        eviction), a wall-clock ``ts``, the ``kind``, and the keyword
        payload verbatim.
        """
        rec = {"record": "event", "kind": kind, "ts": time.time(), **data}
        with self._lock:
            self._seq += 1
            rec["seq"] = self._seq
            if len(self._ring) >= self.capacity:
                # The deque will overwrite its oldest entry: that event
                # is lost to pollers. Count the loss so it is visible
                # (`events.dropped` in /metrics and the manifest).
                self._dropped += 1
                dropped_now = True
            else:
                dropped_now = False
            self._ring.append(rec)
            self._counts[kind] = self._counts.get(kind, 0) + 1
            sink = self._sink
            if sink is not None:
                sink.write(json.dumps(rec, sort_keys=True))
                sink.write("\n")
            listeners = list(self._listeners) if self._listeners else None
        if dropped_now:
            from .counters import COUNTERS

            COUNTERS.inc("events.dropped")
        if listeners:
            # Outside the lock: a listener may itself emit, or do IO
            # (the run journal mirrors chunk lifecycle into its WAL).
            for fn in listeners:
                try:
                    fn(rec)
                except Exception:
                    pass  # a broken listener must not break the runtime
        return rec

    # -- reading ------------------------------------------------------- #

    def recent(
        self,
        limit: Optional[int] = None,
        kind: Optional[str] = None,
        after_seq: int = 0,
    ) -> List[Dict]:
        """The newest events, oldest first.

        ``limit`` caps the tail length, ``kind`` filters by event kind,
        ``after_seq`` skips events a poller has already consumed.
        """
        with self._lock:
            events = list(self._ring)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        if after_seq:
            events = [e for e in events if e["seq"] > after_seq]
        if limit is not None and limit >= 0:
            events = events[-limit:]
        return events

    def counts(self) -> Dict[str, int]:
        """Per-kind emission counts since process start (or :meth:`clear`)."""
        with self._lock:
            return dict(self._counts)

    @property
    def seq(self) -> int:
        """Sequence number of the most recent event (0 when none)."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events overwritten off the back of the ring (lost to pollers)."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # -- JSONL sink ---------------------------------------------------- #

    def open_sink(self, path: str) -> None:
        """Mirror every subsequent event to ``path`` as JSONL.

        One sink at a time; opening replaces (and closes) the previous
        one. The ring keeps working either way.
        """
        fh = open(path, "w")
        with self._lock:
            old, self._sink = self._sink, fh
        if old is not None:
            old.close()

    def close_sink(self) -> None:
        """Flush + detach the JSONL sink; idempotent."""
        with self._lock:
            old, self._sink = self._sink, None
        if old is not None:
            old.close()

    # -- listeners ----------------------------------------------------- #

    def add_listener(self, fn) -> None:
        """Call ``fn(record)`` for every subsequent event.

        Listeners run outside the bus lock, after the event is stored;
        exceptions they raise are swallowed. Used by the run journal to
        mirror chunk lifecycle into the write-ahead log.
        """
        with self._lock:
            self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        """Detach a listener added by :meth:`add_listener`; idempotent."""
        with self._lock:
            try:
                self._listeners.remove(fn)
            except ValueError:
                pass

    # -- test/bench helpers -------------------------------------------- #

    def clear(self) -> None:
        """Drop ring + counts (not the sink). Test helper."""
        with self._lock:
            self._ring.clear()
            self._counts.clear()
            self._dropped = 0


#: The process-global bus every instrumented module emits into.
EVENTS = EventBus()
