"""Low-overhead run counter registry (paper Table 2 / GCUPS substrate).

The observability layer counts *work*, not time: anchors seeded, chains
built, DP cells evaluated, band corridor widths, reads dropped. DP-cell
counts are what GCUPS (giga cell updates per second) is defined over —
the primary kernel metric of the GPU-aligner literature (GASAL2,
GenASM) — and the paper's banded kernels make the count non-obvious:
cells are the sum of *band areas*, not ``|Q| x |T|``.

Counters must cost near-nothing on the hot path (the acceptance budget
is <= 5% wall-clock with telemetry outputs disabled), so the registry
shards per thread: :meth:`CounterRegistry.inc` touches only the calling
thread's private dict — plain int adds, no locks — and the registry
lock is taken once per thread lifetime to register the shard.
Increments happen at call granularity (once per kernel invocation /
read), never per cell.

Worker *processes* each carry their own module-level :data:`COUNTERS`;
the process backend snapshots :meth:`~CounterRegistry.totals` around
each chunk and ships the delta home (see
:mod:`repro.runtime.procpool`), so totals are identical across the
serial, thread, and process backends for the same read set.
"""

from __future__ import annotations

import threading
from typing import Dict, List

__all__ = [
    "CounterRegistry",
    "COUNTERS",
    "counter_delta",
    "SHAPE_DEPENDENT_PREFIXES",
    "drop_shape_dependent",
]

#: Counter/histogram name prefixes whose values depend on how work was
#: *grouped* (batch composition, chunk boundaries), not on the read set
#: itself.  The cross-read wavefront kernel's occupancy and padding
#: telemetry varies with bucket packing, so cross-backend identity
#: checks must exclude these; everything else is byte-stable across
#: serial/threads/processes/streaming.  ``events.`` rides along: ring
#: evictions (``events.dropped``) depend on how many diagnostic events
#: each backend emits and on how full the ring already is.
SHAPE_DEPENDENT_PREFIXES = ("wavefront.", "dispatch.", "events.")


def drop_shape_dependent(totals):
    """Return ``totals`` without grouping-dependent entries."""
    return {
        k: v
        for k, v in totals.items()
        if not k.startswith(SHAPE_DEPENDENT_PREFIXES)
    }


class CounterRegistry:
    """Process-wide integer counters, sharded per thread."""

    __slots__ = ("_local", "_lock", "_shards")

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._shards: List[Dict[str, int]] = []

    def _shard(self) -> Dict[str, int]:
        d = getattr(self._local, "d", None)
        if d is None:
            d = {}
            self._local.d = d
            with self._lock:
                self._shards.append(d)
        return d

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to ``name`` — lock-free, safe from any thread."""
        d = self._shard()
        d[name] = d.get(name, 0) + n

    def merge(self, totals: Dict[str, int]) -> None:
        """Fold a totals dict (e.g. a worker process's delta) in."""
        d = self._shard()
        for k, v in totals.items():
            d[k] = d.get(k, 0) + v

    def totals(self) -> Dict[str, int]:
        """Sum across all shards.

        Exact at quiescence (after pools join); while other threads are
        still incrementing it is a best-effort snapshot — concurrent
        first-insertions can force a retry of that shard's iteration.
        """
        out: Dict[str, int] = {}
        with self._lock:
            shards = list(self._shards)
        for d in shards:
            for _ in range(8):
                try:
                    items = list(d.items())
                    break
                except RuntimeError:  # resized mid-iteration
                    continue
            else:  # pragma: no cover - pathological contention
                items = []
            for k, v in items:
                out[k] = out.get(k, 0) + v
        return out

    def reset(self) -> None:
        """Zero every counter (all shards). Test/bench helper."""
        with self._lock:
            for d in self._shards:
                d.clear()


#: The process-global registry every instrumented module increments.
COUNTERS = CounterRegistry()


def counter_delta(
    after: Dict[str, int], before: Dict[str, int]
) -> Dict[str, int]:
    """``after - before`` per key, dropping zero entries."""
    out: Dict[str, int] = {}
    for k, v in after.items():
        dv = v - before.get(k, 0)
        if dv:
            out[k] = dv
    return out
