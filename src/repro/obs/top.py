"""``repro top``: a refreshing terminal dashboard for a mapping run.

Two attachment modes, one renderer:

* **Live**: ``repro top http://127.0.0.1:8765`` polls the run's
  ``/status`` endpoint (:mod:`repro.obs.statusd`) every ``interval``
  seconds and redraws. Exits when the endpoint stops answering (the
  run finished and tore the server down).
* **Tail**: ``repro top progress.jsonl`` follows a heartbeat JSONL
  file written by ``map --progress --progress-file``; new beats redraw
  the dashboard, the ``final`` beat ends it. Works on a file that is
  still being written *or* after the fact (renders the last record).

The dashboard shows what an operator actually watches: progress bar +
ETA, reads/s (cumulative and current window), aggregate GCUPS, lane
occupancy of the batched wavefront kernel, queue depths, and fault
counts. When the ``/status`` document carries a ``serve`` block (the
endpoint belongs to a ``manymap serve`` front-end) a serving panel is
added — request totals, the ok/error/shed split (sheds broken down by
queue/quota/drain), request-coalescing means and the queue-depth high
water — plus kept/started trace counts when tracing is on. Rendering is plain ANSI (cursor-home + clear-to-end), stdlib
only, and degrades to sequential frames when stdout is not a TTY.
"""

from __future__ import annotations

import json
import os
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

__all__ = ["fetch_status", "render_dashboard", "run_top"]

#: Poll cadence (seconds) when none is given.
DEFAULT_INTERVAL = 1.0


def _is_url(target: str) -> bool:
    return target.startswith("http://") or target.startswith("https://")


def fetch_status(url: str, timeout: float = 2.0) -> Dict:
    """One ``/status`` document from a live run."""
    base = url.rstrip("/")
    if not base.endswith("/status"):
        base = base + "/status"
    with urllib.request.urlopen(base, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _bar(done: int, total: Optional[int], width: int = 30) -> str:
    if not total:
        return "[" + "?" * width + "]"
    frac = min(max(done / total, 0.0), 1.0)
    fill = int(round(frac * width))
    return "[" + "#" * fill + "-" * (width - fill) + f"] {100 * frac:5.1f}%"


def _eta(rec: Dict) -> str:
    eta = rec.get("eta_s")
    if eta is None:
        return "--"
    eta = int(eta)
    if eta >= 3600:
        return f"{eta // 3600}h{(eta % 3600) // 60:02d}m"
    if eta >= 60:
        return f"{eta // 60}m{eta % 60:02d}s"
    return f"{eta}s"


def render_dashboard(rec: Dict, source: str = "") -> str:
    """The dashboard frame for one status/heartbeat record."""
    done = int(rec.get("reads_done", 0))
    total = rec.get("total_reads")
    lines = []
    state = "done" if rec.get("final") else "running"
    run_id = (rec.get("run_id") or "")[:12]
    lines.append(
        f"manymap top — {state}"
        + (f" — run {run_id}" if run_id else "")
        + (f" — {source}" if source else "")
    )
    lines.append("")
    lines.append(
        f"  reads    {_bar(done, total)}  {done}"
        + (f" / {total}" if total else " / ?")
        + f"   ETA {_eta(rec)}"
    )
    window = rec.get("window_reads_per_s")
    lines.append(
        f"  rate     {rec.get('reads_per_s', 0.0):10.1f} reads/s overall"
        + (
            f"   {window:10.1f} reads/s window"
            if window is not None
            else ""
        )
    )
    lines.append(
        f"  compute  {rec.get('gcups', 0.0):10.4f} GCUPS"
        f"   {int(rec.get('dp_cells', 0)):,} DP cells"
    )
    batch = rec.get("batch") or {}
    if batch:
        lines.append(
            f"  lanes    {batch.get('occupancy_pct', 0.0):9.1f}% occupancy"
            f"   {batch.get('lanes', 0)} lanes"
            f" ({batch.get('lanes_retired', 0)} retired early)"
            f"   {batch.get('batched_jobs', 0)} batched"
            f" / {batch.get('fallback_jobs', 0)} fallback jobs"
        )
    serve = rec.get("serve") or {}
    if serve:
        shed = int(serve.get("shed", 0))
        shed_bits = (
            f" (queue {serve.get('shed_queue', 0)}"
            f" / quota {serve.get('shed_quota', 0)}"
            f" / drain {serve.get('shed_draining', 0)})"
            if shed
            else ""
        )
        lines.append(
            f"  serve    {serve.get('requests', 0)} requests"
            f"   {serve.get('ok', 0)} ok"
            f" / {serve.get('errors', 0)} err"
            f" / {shed} shed{shed_bits}"
        )
        lines.append(
            f"  batches  {serve.get('batches', 0)} executed"
            f"   {serve.get('mean_requests_per_batch', 0.0):.1f} req"
            f" / {serve.get('mean_reads_per_batch', 0.0):.1f} reads"
            " per batch"
            f"   queue depth max {serve.get('queue_depth_max', 0)}"
        )
    tracing = rec.get("tracing") or {}
    if tracing:
        lines.append(
            f"  traces   {tracing.get('kept', 0)} kept"
            f" / {tracing.get('started', 0)} started"
            f" ({tracing.get('dropped', 0)} sampled out)"
        )
    queues = rec.get("queues") or {}
    if queues:
        # "stream.work_queue.depth.max" -> "work_queue"
        def _label(k: str) -> str:
            parts = k.split(".")
            return parts[-3] if len(parts) >= 3 else k

        depth = "   ".join(
            f"{_label(k)}={v:g}" for k, v in sorted(queues.items())
        )
        lines.append(f"  queues   {depth}")
    faults = rec.get("faults") or {}
    quarantined = int(rec.get("quarantined", 0))
    if faults or quarantined:
        parts = [f"{quarantined} quarantined"] + [
            f"{v} {k}" for k, v in sorted(faults.items())
            if k not in ("quarantined",)
        ]
        lines.append("  faults   " + ", ".join(parts))
    lines.append(
        f"  elapsed  {rec.get('elapsed_s', 0.0):10.1f}s"
    )
    return "\n".join(lines) + "\n"


def _draw(frame: str, tty: bool, out) -> None:
    if tty:
        out.write("\x1b[H\x1b[J")  # cursor home + clear to end
    out.write(frame)
    out.flush()


def _top_url(target: str, interval: float, out, max_frames) -> int:
    misses = 0
    frames = 0
    while max_frames is None or frames < max_frames:
        try:
            rec = fetch_status(target)
            misses = 0
        except (urllib.error.URLError, OSError, ValueError):
            misses += 1
            if frames == 0 and misses >= 3:
                print(f"top: cannot reach {target}", file=sys.stderr)
                return 1
            if misses >= 3:
                out.write("run ended (status endpoint gone)\n")
                out.flush()
                return 0
            time.sleep(interval)
            continue
        frames += 1
        _draw(render_dashboard(rec, source=target), out.isatty(), out)
        if rec.get("final"):
            return 0
        time.sleep(interval)
    return 0


def _top_file(target: str, interval: float, out, max_frames) -> int:
    if not os.path.exists(target):
        print(f"top: no such file: {target}", file=sys.stderr)
        return 1
    last: Optional[Dict] = None
    frames = 0
    with open(target) as fh:
        while max_frames is None or frames < max_frames:
            line = fh.readline()
            if line:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # half-written tail line; retry next pass
                if rec.get("record") not in ("progress", "status"):
                    continue
                last = rec
                frames += 1
                _draw(render_dashboard(rec, source=target), out.isatty(), out)
                if rec.get("final"):
                    return 0
                continue
            # EOF: a finished file without a final beat renders what we
            # have; a live file gets tailed.
            if not _growing(fh, target):
                if last is not None:
                    return 0
                print(
                    f"top: no progress records in {target}", file=sys.stderr
                )
                return 1
            time.sleep(interval)
    if last is None:
        print(f"top: no progress records in {target}", file=sys.stderr)
        return 1
    return 0


def _growing(fh, path: str) -> bool:
    """True while the writer may still append (file larger than read pos
    or modified within the last 30s)."""
    try:
        st = os.stat(path)
    except OSError:
        return False
    if st.st_size > fh.tell():
        return True
    return (time.time() - st.st_mtime) < 30.0


def run_top(
    target: str,
    interval: float = DEFAULT_INTERVAL,
    out=None,
    max_frames: Optional[int] = None,
) -> int:
    """Entry point behind ``repro top``; returns the exit code.

    ``target`` is a status URL (``http://...``) or a heartbeat JSONL
    path. ``max_frames`` bounds the number of rendered frames (tests /
    one-shot snapshots: ``--once`` maps to 1).
    """
    if interval <= 0:
        raise ValueError(f"interval must be > 0: {interval}")
    out = out or sys.stdout
    if _is_url(target):
        return _top_url(target, interval, out, max_frames)
    return _top_file(target, interval, out, max_frames)
