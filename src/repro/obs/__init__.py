"""Run observability: counters, histograms, traces, metrics, logging.

The paper's entire argument is quantitative (Table 2's stage breakdown,
Figure 11's percentages, GCUPS microbenchmarks); this package makes
every run of our pipeline produce the same evidence:

* :mod:`~repro.obs.counters` — low-overhead work counters (anchors,
  chains, DP cells, band widths), sharded per thread, shipped home from
  worker processes; always on, cheap int adds only.
* :mod:`~repro.obs.hist` — streaming log2-bucket histograms (per-stage
  latency, read length, band width) with p50/p90/p99, mergeable across
  threads and worker processes exactly like counter deltas.
* :mod:`~repro.obs.telemetry` — per-run counter/histogram scoping, the
  per-run ``run_id``, and per-read trace spans (``--trace`` JSONL,
  spilled incrementally).
* :mod:`~repro.obs.timeline` — Chrome-trace/Perfetto timeline export
  of a run's spans (``--timeline``): one lane per worker, the paper's
  Fig. 11 overlap made visible.
* :mod:`~repro.obs.progress` — live heartbeat (``--progress``): a
  daemon thread sampling the shared counters into periodic status
  lines, off the hot path.
* :mod:`~repro.obs.export` — the live exposition layer: one shared
  :class:`~repro.obs.export.RunSampler` plus OpenMetrics/Prometheus
  text and JSON status formatters over the registries.
* :mod:`~repro.obs.statusd` — ``map --status-port``: an in-run stdlib
  HTTP daemon serving ``/metrics``, ``/status``, ``/events`` and
  ``/healthz`` (ROADMAP item 2's live status endpoint).
* :mod:`~repro.obs.events` — bounded structured event bus (dispatch
  decisions, pool respawns, faults, heartbeats; ``--events`` JSONL).
* :mod:`~repro.obs.top` — ``manymap top``: a refreshing terminal
  dashboard over a live ``/status`` endpoint or a heartbeat JSONL.
* :mod:`~repro.obs.metrics` — the ``--metrics`` run manifest: config,
  machine, stage seconds, counters, histograms, derived GCUPS, peak
  RSS.
* :mod:`~repro.obs.report` — ``manymap report``: Table 2-style
  comparison of one or more manifests, plus the ``--compare``
  perf-regression gate.
* :mod:`~repro.obs.tracing` — request-scoped distributed tracing:
  causally-linked spans across the serve → batch → kernel path,
  tail-based sampling (errors/sheds + slowest-k%), a bounded on-disk
  trace store serving ``GET /trace/<id>``, and OpenMetrics exemplars.
* :mod:`~repro.obs.logs` — structured stderr logging with per-worker
  and per-run prefixes.
* :mod:`~repro.obs.schema` — stdlib JSON-schema-subset validation of
  manifests (used by CI).
"""

from .counters import COUNTERS, CounterRegistry, counter_delta
from .events import EVENTS, EventBus
from .export import RunSampler, render_openmetrics, status_record
from .gauges import GaugeSet
from .hist import (
    HISTOGRAMS,
    Histogram,
    HistogramRegistry,
    hist_delta,
    merge_hist_json,
    summarize,
)
from .logs import (
    LOG_LEVELS,
    current_level_name,
    current_run_id,
    get_logger,
    set_run_id,
    setup_logging,
)
from .metrics import (
    SCHEMA_VERSION,
    build_metrics,
    derive_metrics,
    load_metrics,
    machine_info,
    write_metrics,
)
from .progress import ProgressReporter
from .statusd import StatusServer
from .report import (
    compare_metrics,
    render_compare,
    render_metrics,
    render_metrics_files,
)
from .schema import SchemaError, assert_valid, validate
from .telemetry import Telemetry, iter_trace, read_span, worker_id
from .timeline import (
    build_timeline,
    chrome_document,
    trace_events,
    write_timeline,
)
from .tracing import (
    TRACER,
    TraceConfig,
    TraceContext,
    Tracer,
    TraceStore,
    render_trace_tree,
    trace_chrome,
)

__all__ = [
    "COUNTERS",
    "CounterRegistry",
    "counter_delta",
    "EVENTS",
    "EventBus",
    "RunSampler",
    "render_openmetrics",
    "status_record",
    "StatusServer",
    "GaugeSet",
    "HISTOGRAMS",
    "Histogram",
    "HistogramRegistry",
    "hist_delta",
    "merge_hist_json",
    "summarize",
    "LOG_LEVELS",
    "current_level_name",
    "current_run_id",
    "get_logger",
    "set_run_id",
    "setup_logging",
    "SCHEMA_VERSION",
    "build_metrics",
    "derive_metrics",
    "load_metrics",
    "machine_info",
    "write_metrics",
    "ProgressReporter",
    "compare_metrics",
    "render_compare",
    "render_metrics",
    "render_metrics_files",
    "SchemaError",
    "assert_valid",
    "validate",
    "Telemetry",
    "iter_trace",
    "read_span",
    "worker_id",
    "build_timeline",
    "chrome_document",
    "trace_events",
    "write_timeline",
    "TRACER",
    "TraceConfig",
    "TraceContext",
    "Tracer",
    "TraceStore",
    "render_trace_tree",
    "trace_chrome",
]
