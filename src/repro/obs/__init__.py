"""Run observability: counters, traces, metrics manifests, logging.

The paper's entire argument is quantitative (Table 2's stage breakdown,
Figure 11's percentages, GCUPS microbenchmarks); this package makes
every run of our pipeline produce the same evidence:

* :mod:`~repro.obs.counters` — low-overhead work counters (anchors,
  chains, DP cells, band widths), sharded per thread, shipped home from
  worker processes; always on, cheap int adds only.
* :mod:`~repro.obs.telemetry` — per-run counter scoping and per-read
  trace spans (``--trace`` JSONL).
* :mod:`~repro.obs.metrics` — the ``--metrics`` run manifest: config,
  machine, stage seconds, counters, derived GCUPS, peak RSS.
* :mod:`~repro.obs.report` — ``manymap report``: Table 2-style
  comparison of one or more manifests.
* :mod:`~repro.obs.logs` — structured stderr logging with per-worker
  prefixes.
* :mod:`~repro.obs.schema` — stdlib JSON-schema-subset validation of
  manifests (used by CI).
"""

from .counters import COUNTERS, CounterRegistry, counter_delta
from .gauges import GaugeSet
from .logs import LOG_LEVELS, current_level_name, get_logger, setup_logging
from .metrics import (
    SCHEMA_VERSION,
    build_metrics,
    derive_metrics,
    load_metrics,
    machine_info,
    write_metrics,
)
from .report import render_metrics, render_metrics_files
from .schema import SchemaError, assert_valid, validate
from .telemetry import Telemetry, read_span, worker_id

__all__ = [
    "COUNTERS",
    "CounterRegistry",
    "counter_delta",
    "GaugeSet",
    "LOG_LEVELS",
    "current_level_name",
    "get_logger",
    "setup_logging",
    "SCHEMA_VERSION",
    "build_metrics",
    "derive_metrics",
    "load_metrics",
    "machine_info",
    "write_metrics",
    "render_metrics",
    "render_metrics_files",
    "SchemaError",
    "assert_valid",
    "validate",
    "Telemetry",
    "read_span",
    "worker_id",
]
