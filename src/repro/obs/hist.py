"""Streaming log2-bucket histograms: latency/length/band distributions.

Counters (:mod:`repro.obs.counters`) answer "how much work happened";
histograms answer "how was it *distributed*" — the shape the paper's
evaluation is built on (Fig. 11 is a distribution over pipeline stages,
§4.2's longest-first batching argument is about the read-length tail)
and the shape the GenASM-GPU line of work reports throughput in
(per-length-bin rates rather than one GCUPS number). Each
:class:`Histogram` keeps fixed log2 buckets plus exact ``count`` /
``sum`` / ``min`` / ``max``, so p50/p90/p99 estimates cost O(#buckets)
and two histograms merge by plain bucket-count addition — the property
that lets worker processes ship their histograms home exactly like
counter deltas.

The process-wide :data:`HISTOGRAMS` registry mirrors
:data:`~repro.obs.counters.COUNTERS`: per-thread shards, lock-free
:meth:`~HistogramRegistry.observe` on the hot path (one dict lookup +
a handful of int/float ops per observation, at call granularity —
never per cell), best-effort :meth:`~HistogramRegistry.totals` while
threads run, exact at quiescence. Worker processes snapshot around each
chunk and ship the delta; the parent folds it in with
:meth:`~HistogramRegistry.merge`, so merged buckets are identical
across the serial/threads/processes/streaming backends for
deterministic quantities (read length, band width). Latency histograms
share bucket *names* across backends but their bucket contents are
wall-clock-dependent by nature; only their total count is invariant.

Bucket ``e`` holds values in ``[2**(e-1), 2**e)`` (via
:func:`math.frexp`); exact zeros get their own ``zeros`` slot. Delta
bucket counts are exact; ``min``/``max`` in a delta are taken from the
*after* snapshot (a process-lifetime envelope, which coincides with the
run for per-run worker processes and can only widen otherwise).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, Optional

__all__ = [
    "Histogram",
    "HistogramRegistry",
    "HISTOGRAMS",
    "hist_delta",
    "merge_hist_json",
    "summarize",
]

#: Percentiles surfaced in manifests and reports.
PERCENTILES = (50, 90, 99)


def _bucket(value: float) -> int:
    """Log2 bucket index: bucket ``e`` covers ``[2**(e-1), 2**e)``."""
    m, e = math.frexp(value)
    return e


class Histogram:
    """One streaming distribution: log2 buckets + exact moments."""

    __slots__ = ("buckets", "count", "zeros", "sum", "min", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.zeros = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- recording ----------------------------------------------------- #

    def observe(self, value: float) -> None:
        """Record one sample (negative values clamp to the zero slot)."""
        self.count += 1
        if value <= 0.0:
            self.zeros += 1
            value = 0.0
        else:
            self.sum += value
            e = _bucket(value)
            b = self.buckets
            b[e] = b.get(e, 0) + 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    # -- merging ------------------------------------------------------- #

    def merge(self, other: "Histogram") -> None:
        self.merge_json(other.to_json())

    def merge_json(self, d: Dict) -> None:
        """Fold a serialized histogram (:meth:`to_json` form) in."""
        self.count += int(d.get("count", 0))
        self.zeros += int(d.get("zeros", 0))
        self.sum += float(d.get("sum", 0.0))
        b = self.buckets
        for key, n in d.get("buckets", {}).items():
            e = int(key)
            b[e] = b.get(e, 0) + int(n)
        for name, pick in (("min", min), ("max", max)):
            v = d.get(name)
            if v is not None:
                cur = getattr(self, name)
                setattr(self, name, v if cur is None else pick(cur, v))

    def copy(self) -> "Histogram":
        """A snapshot copy, safe against a concurrently observing owner."""
        out = Histogram()
        for _ in range(8):
            try:
                out.buckets = dict(self.buckets)
                break
            except RuntimeError:  # resized mid-iteration
                continue
        out.count = self.count
        out.zeros = self.zeros
        out.sum = self.sum
        out.min = self.min
        out.max = self.max
        return out

    # -- serialization ------------------------------------------------- #

    def to_json(self) -> Dict:
        return {
            "count": self.count,
            "zeros": self.zeros,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {str(e): n for e, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_json(cls, d: Dict) -> "Histogram":
        out = cls()
        out.merge_json(d)
        # merge_json cannot restore None-ness of min/max, so re-pin them.
        out.min = d.get("min")
        out.max = d.get("max")
        return out

    # -- statistics ---------------------------------------------------- #

    @property
    def mean(self) -> float:
        return self.sum / (self.count - self.zeros) if self.count > self.zeros else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0..100) from the buckets.

        Exact for the min/max endpoints; elsewhere linear interpolation
        inside the covering log2 bucket, clamped to the exact observed
        ``[min, max]`` envelope.
        """
        if self.count == 0:
            return 0.0
        target = (q / 100.0) * self.count
        if target <= self.zeros:
            return 0.0
        cum = float(self.zeros)
        value = self.max if self.max is not None else 0.0
        for e in sorted(self.buckets):
            n = self.buckets[e]
            if cum + n >= target:
                lo, hi = math.ldexp(1.0, e - 1), math.ldexp(1.0, e)
                frac = (target - cum) / n
                value = lo + frac * (hi - lo)
                break
            cum += n
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def summary(self, percentiles: Iterable[int] = PERCENTILES) -> Dict:
        """The manifest form: moments, percentiles, and raw buckets."""
        out = self.to_json()
        out["mean"] = self.mean
        for q in percentiles:
            out[f"p{q}"] = self.percentile(q)
        return out


class HistogramRegistry:
    """Process-wide named histograms, sharded per thread like COUNTERS."""

    __slots__ = ("_local", "_lock", "_shards", "enabled")

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._shards = []  # type: list[Dict[str, Histogram]]
        #: benchmark/test kill switch; hot-path observes become no-ops.
        self.enabled = True

    def _shard(self) -> Dict[str, Histogram]:
        d = getattr(self._local, "d", None)
        if d is None:
            d = {}
            self._local.d = d
            with self._lock:
                self._shards.append(d)
        return d

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into ``name`` — lock-free, any thread."""
        if not self.enabled:
            return
        d = self._shard()
        h = d.get(name)
        if h is None:
            h = d[name] = Histogram()
        h.observe(value)

    def merge(self, delta: Dict[str, Dict]) -> None:
        """Fold a serialized snapshot/delta (e.g. from a worker) in."""
        if not delta:
            return
        d = self._shard()
        for name, hd in delta.items():
            h = d.get(name)
            if h is None:
                h = d[name] = Histogram()
            h.merge_json(hd)

    def totals(self) -> Dict[str, Histogram]:
        """Merged histograms across all shards (best-effort mid-run)."""
        out: Dict[str, Histogram] = {}
        with self._lock:
            shards = list(self._shards)
        for d in shards:
            for _ in range(8):
                try:
                    items = [(k, h.copy()) for k, h in d.items()]
                    break
                except RuntimeError:  # resized mid-iteration
                    continue
            else:  # pragma: no cover - pathological contention
                items = []
            for name, h in items:
                tgt = out.get(name)
                if tgt is None:
                    out[name] = h
                else:
                    tgt.merge(h)
        return out

    def snapshot(self) -> Dict[str, Dict]:
        """Serialized totals — the worker-shipping / baseline form."""
        return {name: h.to_json() for name, h in self.totals().items()}

    def reset(self) -> None:
        """Drop every sample (all shards). Test/bench helper."""
        with self._lock:
            for d in self._shards:
                d.clear()

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True


#: The process-global registry every instrumented module observes into.
HISTOGRAMS = HistogramRegistry()


def hist_delta(
    after: Dict[str, Dict], before: Dict[str, Dict]
) -> Dict[str, Dict]:
    """``after - before`` per histogram, dropping empty results.

    Bucket counts, ``count``, ``zeros`` and ``sum`` subtract exactly;
    ``min``/``max`` are carried from ``after`` (see module docstring).
    """
    out: Dict[str, Dict] = {}
    for name, a in after.items():
        b = before.get(name)
        if b is None:
            if a.get("count", 0):
                out[name] = a
            continue
        buckets: Dict[str, int] = {}
        for key, n in a.get("buckets", {}).items():
            dn = int(n) - int(b.get("buckets", {}).get(key, 0))
            if dn:
                buckets[key] = dn
        d = {
            "count": int(a.get("count", 0)) - int(b.get("count", 0)),
            "zeros": int(a.get("zeros", 0)) - int(b.get("zeros", 0)),
            "sum": float(a.get("sum", 0.0)) - float(b.get("sum", 0.0)),
            "min": a.get("min"),
            "max": a.get("max"),
            "buckets": buckets,
        }
        if d["count"]:
            out[name] = d
    return out


def merge_hist_json(a: Dict[str, Dict], b: Dict[str, Dict]) -> Dict[str, Dict]:
    """Merge two serialized snapshot dicts (chunk-result halves)."""
    out = {name: Histogram.from_json(d) for name, d in a.items()}
    for name, d in b.items():
        h = out.get(name)
        if h is None:
            out[name] = Histogram.from_json(d)
        else:
            h.merge_json(d)
    return {name: h.to_json() for name, h in out.items()}


def summarize(snapshot: Dict[str, Dict]) -> Dict[str, Dict]:
    """Manifest form of a serialized snapshot: adds mean + percentiles."""
    return {
        name: Histogram.from_json(d).summary()
        for name, d in sorted(snapshot.items())
    }
