"""Request-scoped distributed tracing with tail-based sampling.

The aggregate planes (counters, histograms, events) answer "how much"
— this module answers "where did *this* request's time go". Every
admitted ``POST /map`` request (and, with ``map --trace-dir``, every
``map_file`` run) becomes one **trace**: a tree of causally-linked
**spans** (``trace_id``/``span_id``/``parent_id``) covering admission
wait, batch coalescing/execution and per-bucket kernel dispatch, so a
p99 regression can be followed from the HTTP front door down to the
DP lanes that paid for it.

Span model
    :class:`TraceContext` is the immutable propagation token (what
    travels on the wire inside :class:`repro.api.MapRequest`);
    :class:`Span` is one timed node. Durations come from
    ``time.perf_counter`` (monotonic); the wall-clock ``ts`` anchor is
    derived once per span so exported traces line up with log
    timestamps.

Hot-path cost
    The global :class:`Tracer` is refcount-enabled. While disabled
    every instrumentation point is one attribute read and a branch.
    While enabled, finished spans are appended to a **per-thread
    buffer** (registered once under a lock, then plain ``list.append``
    — the same lock-free sharding idiom as
    :mod:`repro.obs.counters`), and drained only when a trace
    completes. The ``bench_metrics_smoke.py`` overhead gate holds the
    end-to-end cost to <=2%.

Tail-based sampling
    Head sampling alone keeps the wrong traces: the interesting ones
    are the failures and the outliers you could not predict at the
    front door. :class:`TraceStore` buffers each trace until its root
    span completes and then keeps it if (a) the trace did not end
    ``ok`` (errors, sheds, expired deadlines are kept at 100%), (b) it
    won the configured head-sample coin flip, or (c) its duration
    lands in the slowest-``k``% of a sliding window. Kept traces live
    in a bounded in-memory map and, when a directory is configured,
    as one ``trace-<id>.json`` file each (oldest evicted first).

Surfaces
    ``GET /trace/<id>`` (span tree JSON, ``?format=chrome`` for a
    Chrome-trace document reusing :mod:`repro.obs.timeline`
    conventions) and ``GET /traces?slowest=N`` are mounted on both
    observability daemons via :func:`repro.obs.httpd.obs_route`;
    ``manymap trace RUN_OR_URL`` renders the tree with self-time
    attribution; OpenMetrics exemplars on the serve latency histogram
    link p99 buckets to trace ids.
"""

from __future__ import annotations

import math
import os
import random
import threading
import time
import uuid
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "TraceConfig",
    "TraceContext",
    "TraceStore",
    "Tracer",
    "TRACER",
    "render_trace_tree",
    "trace_chrome",
]


def _new_id() -> str:
    """A 16-hex-digit id; unique enough for spans, cheap to compare."""

    return uuid.uuid4().hex[:16]


# --------------------------------------------------------------------- #
# propagation token
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TraceContext:
    """The immutable token that links spans into one trace.

    ``trace_id`` names the trace; ``span_id`` is the would-be parent
    of any child span created under this context (``None`` for a
    capture root that has no parent span). ``sampled`` carries the
    *head*-sampling decision made at the root so every hop agrees —
    tail sampling can still keep an unsampled trace if it errors or
    lands in the slowest-k%.
    """

    trace_id: str
    span_id: Optional[str] = None
    sampled: bool = True

    def child(self, span_id: str) -> "TraceContext":
        return replace(self, span_id=span_id)

    def to_json(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": bool(self.sampled),
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "TraceContext":
        if not isinstance(doc, dict):
            raise ValueError("trace context must be an object")
        trace_id = doc.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise ValueError("trace context needs a non-empty trace_id")
        span_id = doc.get("span_id")
        if span_id is not None and not isinstance(span_id, str):
            raise ValueError("trace context span_id must be a string")
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            sampled=bool(doc.get("sampled", True)),
        )


# --------------------------------------------------------------------- #
# spans
# --------------------------------------------------------------------- #


class Span:
    """One timed node of a trace. Mutable until :meth:`Tracer.end_span`."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "ts",
        "start",
        "dur_s",
        "status",
        "sampled",
        "attrs",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        ts: float,
        start: float,
        sampled: bool = True,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.ts = ts  # wall-clock anchor (unix seconds) of span start
        self.start = start  # perf_counter at span start
        self.dur_s = 0.0
        self.status = "ok"
        self.sampled = sampled
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}

    @property
    def ctx(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id, self.sampled)

    def to_json(self) -> Dict[str, Any]:
        return {
            "record": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "ts": self.ts,
            "dur_s": self.dur_s,
            "status": self.status,
            "attrs": self.attrs,
        }


# --------------------------------------------------------------------- #
# the tracer
# --------------------------------------------------------------------- #


class _CapturedSpans:
    """Result box for :meth:`Tracer.capture`."""

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: List[Dict[str, Any]] = []


class Tracer:
    """Span factory + lock-free per-thread span buffers.

    ``clock``/``wall``/``rng`` are injectable so tail-sampling and
    span-timing tests are deterministic. The global :data:`TRACER`
    uses the real clocks.
    """

    PENDING_MAX = 1024  # completed-but-unclaimed traces kept at most

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        wall: Callable[[], float] = time.time,
        rng: Optional[Callable[[], float]] = None,
    ) -> None:
        self.clock = clock
        self.wall = wall
        self.rng = rng or random.random
        self._lock = threading.Lock()
        self._refs = 0
        self._on = False
        self._local = threading.local()
        self._buffers: List[List[Dict[str, Any]]] = []
        # finished spans moved out of thread buffers, keyed by trace_id
        self._pending: Dict[str, List[Dict[str, Any]]] = {}
        # (hist_name, log2 bucket exponent) -> (value, trace_id, unix ts)
        self._exemplars: Dict[Tuple[str, int], Tuple[float, str, float]] = {}

    # -- lifecycle ----------------------------------------------------- #

    @property
    def enabled(self) -> bool:
        return self._on

    def enable(self) -> None:
        """Refcounted: every plane (serve, map run) that wants spans
        calls enable() on start and disable() on shutdown."""

        with self._lock:
            self._refs += 1
            self._on = True

    def disable(self) -> None:
        with self._lock:
            self._refs = max(0, self._refs - 1)
            self._on = self._refs > 0
            if not self._on:
                self._drain_locked()
                self._pending.clear()
                self._exemplars.clear()

    def new_id(self) -> str:
        return _new_id()

    # -- per-thread buffer (counters.py sharding idiom) ---------------- #

    def _buf(self) -> List[Dict[str, Any]]:
        buf = getattr(self._local, "buf", None)
        if buf is None:
            buf = []
            with self._lock:
                self._buffers.append(buf)
            self._local.buf = buf
        return buf

    def _drain_locked(self) -> None:
        """Move finished spans from every thread buffer into _pending.

        Writers only ever append; we copy the first ``n`` items and
        delete exactly those, so a concurrent append is never lost.
        """

        for buf in self._buffers:
            n = len(buf)
            if not n:
                continue
            items = buf[:n]
            del buf[:n]
            for rec in items:
                self._pending.setdefault(rec["trace_id"], []).append(rec)
        while len(self._pending) > self.PENDING_MAX:
            self._pending.pop(next(iter(self._pending)))

    def take(self, trace_id: str) -> List[Dict[str, Any]]:
        """Claim every finished span of ``trace_id`` (across threads)."""

        with self._lock:
            self._drain_locked()
            return self._pending.pop(trace_id, [])

    # -- span creation ------------------------------------------------- #

    def start_span(
        self,
        name: str,
        parent: Optional[TraceContext] = None,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        sampled: bool = True,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span; explicit ids win over ``parent``'s."""

        if parent is not None:
            trace_id = trace_id or parent.trace_id
            if parent_id is None:
                parent_id = parent.span_id
            sampled = parent.sampled
        return Span(
            trace_id=trace_id or _new_id(),
            span_id=_new_id(),
            parent_id=parent_id,
            name=name,
            ts=self.wall(),
            start=self.clock(),
            sampled=sampled,
            attrs=attrs,
        )

    def end_span(self, span: Span, status: Optional[str] = None) -> Dict[str, Any]:
        """Close a span and park it in this thread's buffer."""

        span.dur_s = max(0.0, self.clock() - span.start)
        if status is not None:
            span.status = status
        rec = span.to_json()
        self._buf().append(rec)
        return rec

    def record(
        self,
        name: str,
        ctx: Optional[TraceContext],
        start: float,
        end: float,
        status: str = "ok",
        **attrs: Any,
    ) -> Optional[Dict[str, Any]]:
        """Emit an already-timed span (perf_counter domain) under ctx."""

        if not self._on or ctx is None:
            return None
        now_perf = self.clock()
        rec = {
            "record": "span",
            "trace_id": ctx.trace_id,
            "span_id": _new_id(),
            "parent_id": ctx.span_id,
            "name": name,
            "ts": self.wall() - (now_perf - start),
            "dur_s": max(0.0, end - start),
            "status": status,
            "attrs": attrs,
        }
        self._buf().append(rec)
        return rec

    # -- ambient (thread-local) context -------------------------------- #

    def current(self) -> Optional[TraceContext]:
        return getattr(self._local, "ctx", None)

    @contextmanager
    def use(self, ctx: Optional[TraceContext]) -> Iterator[None]:
        """Make ``ctx`` the ambient parent for :meth:`span` on this thread."""

        prev = getattr(self._local, "ctx", None)
        self._local.ctx = ctx
        try:
            yield
        finally:
            self._local.ctx = prev

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[Span]]:
        """Child span of the ambient context; no-op (yields ``None``)
        when tracing is off or no trace is in flight on this thread."""

        ctx = self.current() if self._on else None
        if ctx is None:
            yield None
            return
        sp = self.start_span(name, parent=ctx, attrs=attrs)
        prev = self._local.ctx
        self._local.ctx = sp.ctx
        try:
            yield sp
        except BaseException:
            self._local.ctx = prev
            self.end_span(sp, status="error")
            raise
        self._local.ctx = prev
        self.end_span(sp)

    # -- capture + graft (the batcher's span-sharing machinery) -------- #

    @contextmanager
    def capture(self) -> Iterator[_CapturedSpans]:
        """Collect the spans emitted on this thread (and its ambient
        context) under a throwaway trace, for grafting elsewhere.

        The batcher executes one pooled batch for many requests; it
        captures the kernel spans once and grafts a copy into every
        member trace so each kept trace is self-contained.
        """

        box = _CapturedSpans()
        if not self._on:
            yield box
            return
        tid = "cap-" + _new_id()
        prev = getattr(self._local, "ctx", None)
        self._local.ctx = TraceContext(tid, None, True)
        try:
            yield box
        finally:
            self._local.ctx = prev
            box.spans = self.take(tid)

    def graft(
        self,
        spans: Iterable[Dict[str, Any]],
        trace_id: str,
        parent_id: Optional[str],
    ) -> List[Dict[str, Any]]:
        """Copy captured spans into ``trace_id``: fresh span ids,
        internal parent links remapped, roots re-parented under
        ``parent_id``."""

        spans = list(spans)
        if not spans:
            return []
        idmap = {rec["span_id"]: _new_id() for rec in spans}
        out: List[Dict[str, Any]] = []
        for rec in spans:
            new = dict(rec)
            new["attrs"] = dict(rec.get("attrs") or {})
            new["trace_id"] = trace_id
            new["span_id"] = idmap[rec["span_id"]]
            new["parent_id"] = idmap.get(rec.get("parent_id"), parent_id)
            out.append(new)
        self._buf().extend(out)
        return out

    # -- exemplars ------------------------------------------------------ #

    def exemplar(self, hist: str, value: float, trace_id: str) -> None:
        """Remember (hist, bucket) -> latest trace id, for OpenMetrics
        exemplars. Bucketing mirrors :func:`repro.obs.hist._bucket`."""

        if not self._on or not trace_id:
            return
        exp = 0 if value <= 0.0 else math.frexp(value)[1]
        with self._lock:
            self._exemplars[(hist, exp)] = (float(value), trace_id, self.wall())

    def exemplars(self) -> Dict[str, Dict[int, Tuple[float, str, float]]]:
        """Snapshot: hist name -> {bucket exponent: (value, trace_id, ts)}."""

        out: Dict[str, Dict[int, Tuple[float, str, float]]] = {}
        with self._lock:
            for (hist, exp), val in self._exemplars.items():
                out.setdefault(hist, {})[exp] = val
        return out


TRACER = Tracer()
"""The process-global tracer every instrumentation point uses."""


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TraceConfig:
    """Tracing knobs, shared by ``MapOptions.tracing`` and
    ``ServeConfig.tracing``. Frozen and picklable (it crosses process
    boundaries inside ``MapOptions``).

    ``sample`` is the *head* rate applied to traces that finish ``ok``
    and are not slow; errored/shed/deadline-expired traces and the
    slowest-``slowest_pct``% (sliding window) are always kept.
    """

    enabled: bool = True
    dir: Optional[str] = None  # on-disk store; None = in-memory only
    sample: float = 1.0  # head-sample rate for fast, clean traces
    slowest_pct: float = 5.0  # tail: always keep the slowest k%
    max_traces: int = 256  # kept-trace bound (memory and disk)

    def validated(self) -> "TraceConfig":
        if not (0.0 <= float(self.sample) <= 1.0):
            raise ValueError("tracing sample must be in [0, 1]")
        if not (0.0 <= float(self.slowest_pct) <= 100.0):
            raise ValueError("tracing slowest_pct must be in [0, 100]")
        if int(self.max_traces) < 1:
            raise ValueError("tracing max_traces must be >= 1")
        return self

    def to_json(self) -> Dict[str, Any]:
        return {
            "enabled": bool(self.enabled),
            "dir": self.dir,
            "sample": float(self.sample),
            "slowest_pct": float(self.slowest_pct),
            "max_traces": int(self.max_traces),
        }


# --------------------------------------------------------------------- #
# the tail-sampling trace store
# --------------------------------------------------------------------- #


class TraceStore:
    """Completed-trace sink: tail-based sampling + bounded retention.

    One store per plane (a serve instance, or a ``map_file`` run).
    :meth:`finish` closes a root span, applies the keep/drop decision
    and — for kept traces — assembles the trace document, bounds the
    in-memory map and mirrors it to ``config.dir`` when set.
    """

    WINDOW = 256  # recent root durations feeding the slowest-k% cut

    def __init__(self, config: TraceConfig, tracer: Optional[Tracer] = None) -> None:
        self.config = config.validated()
        self.tracer = tracer or TRACER
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._durations: deque = deque(maxlen=self.WINDOW)
        self.started = 0
        self.kept = 0
        self.dropped = 0
        if self.config.dir:
            os.makedirs(self.config.dir, exist_ok=True)

    # -- sampling ------------------------------------------------------- #

    def head_sampled(self) -> bool:
        """The root-creation coin flip, propagated with the context."""

        s = float(self.config.sample)
        if s >= 1.0:
            return True
        if s <= 0.0:
            return False
        return self.tracer.rng() < s

    def _slow_locked(self, dur_s: float) -> bool:
        pct = float(self.config.slowest_pct)
        if pct <= 0.0:
            return False
        if pct >= 100.0:
            return True
        window = sorted(self._durations)
        # Keep if dur lands at or above the (100-pct) percentile of the
        # recent window (the window already includes this duration).
        idx = int(math.ceil(len(window) * (1.0 - pct / 100.0)))
        idx = min(max(idx - 1, 0), len(window) - 1)
        return dur_s >= window[idx] and dur_s > 0.0

    # -- completion ----------------------------------------------------- #

    def finish(self, root: Optional[Span], status: str = "ok") -> bool:
        """Close ``root``, decide keep/drop, store if kept.

        Returns True when the trace was retained. The trace's spans
        are always drained from the tracer either way (dropped traces
        must not leak buffer memory).
        """

        if root is None:
            return False
        self.tracer.end_span(root, status=status)
        dur = root.dur_s
        with self._lock:
            self.started += 1
            self._durations.append(dur)
            keep = status != "ok" or root.sampled or self._slow_locked(dur)
            if not keep:
                self.dropped += 1
        spans = self.tracer.take(root.trace_id)
        if not keep:
            return False
        spans.sort(key=lambda rec: rec.get("ts", 0.0))
        doc = {
            "record": "trace",
            "trace_id": root.trace_id,
            "root": root.name,
            "status": status,
            "ts": root.ts,
            "duration_ms": dur * 1000.0,
            "n_spans": len(spans),
            "spans": spans,
        }
        evicted: List[str] = []
        with self._lock:
            self.kept += 1
            self._traces[root.trace_id] = doc
            while len(self._traces) > int(self.config.max_traces):
                evicted.append(self._traces.popitem(last=False)[0])
        if self.config.dir:
            self._write(doc)
            for tid in evicted:
                try:
                    os.unlink(os.path.join(self.config.dir, "trace-%s.json" % tid))
                except OSError:
                    pass
        return True

    def _write(self, doc: Dict[str, Any]) -> None:
        from ..utils.fsio import atomic_write_json

        path = os.path.join(self.config.dir, "trace-%s.json" % doc["trace_id"])
        try:
            atomic_write_json(path, doc, fsync=False)
        except OSError:  # a full disk must never kill the serving plane
            pass

    # -- queries -------------------------------------------------------- #

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            doc = self._traces.get(trace_id)
        if doc is not None:
            return doc
        if self.config.dir:  # evicted from memory but maybe still on disk
            import json

            path = os.path.join(self.config.dir, "trace-%s.json" % trace_id)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    return json.load(fh)
            except (OSError, ValueError):
                return None
        return None

    def slowest(self, n: int = 10) -> List[Dict[str, Any]]:
        """Summaries of the ``n`` slowest kept traces, slowest first."""

        with self._lock:
            docs = list(self._traces.values())
        docs.sort(key=lambda d: d.get("duration_ms", 0.0), reverse=True)
        return [
            {
                "trace_id": d["trace_id"],
                "root": d.get("root", ""),
                "status": d.get("status", "ok"),
                "ts": d.get("ts", 0.0),
                "duration_ms": d.get("duration_ms", 0.0),
                "n_spans": d.get("n_spans", 0),
            }
            for d in docs[: max(0, int(n))]
        ]

    def summary(self) -> Dict[str, Any]:
        """The manifest/``/status`` ``tracing`` block."""

        with self._lock:
            return {
                "enabled": True,
                "started": self.started,
                "kept": self.kept,
                "dropped": self.dropped,
                "sample": float(self.config.sample),
                "slowest_pct": float(self.config.slowest_pct),
                "max_traces": int(self.config.max_traces),
                "dir": self.config.dir or "",
            }


# --------------------------------------------------------------------- #
# rendering: span tree + Chrome trace
# --------------------------------------------------------------------- #


def _index_spans(
    spans: List[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[Optional[str], List[Dict[str, Any]]]]:
    """(roots, children-by-parent); children sorted by wall ts."""

    ids = {rec.get("span_id") for rec in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for rec in spans:
        parent = rec.get("parent_id")
        if parent in ids:
            children.setdefault(parent, []).append(rec)
        else:
            roots.append(rec)
    for kids in children.values():
        kids.sort(key=lambda r: r.get("ts", 0.0))
    roots.sort(key=lambda r: r.get("ts", 0.0))
    return roots, children


def _self_ms(rec: Dict[str, Any], children: Dict[Optional[str], List[Dict[str, Any]]]) -> float:
    kids = children.get(rec.get("span_id"), [])
    child_s = sum(k.get("dur_s", 0.0) for k in kids)
    return max(0.0, rec.get("dur_s", 0.0) - child_s) * 1000.0


def _fmt_attrs(attrs: Dict[str, Any], limit: int = 6) -> str:
    parts = []
    for key in sorted(attrs)[:limit]:
        val = attrs[key]
        if isinstance(val, float):
            val = "%.3g" % val
        parts.append("%s=%s" % (key, val))
    return " ".join(parts)


def render_trace_tree(doc: Dict[str, Any]) -> str:
    """ASCII span tree with per-span self-time attribution."""

    spans = list(doc.get("spans", []))
    lines = [
        "trace %s  root=%s  status=%s  duration=%.2f ms  spans=%d"
        % (
            doc.get("trace_id", "?"),
            doc.get("root", "?"),
            doc.get("status", "?"),
            doc.get("duration_ms", 0.0),
            len(spans),
        )
    ]
    if not spans:
        lines.append("  (no spans)")
        return "\n".join(lines)
    roots, children = _index_spans(spans)

    def walk(rec: Dict[str, Any], prefix: str, is_last: bool) -> None:
        branch = "└─ " if is_last else "├─ "
        dur_ms = rec.get("dur_s", 0.0) * 1000.0
        self_ms = _self_ms(rec, children)
        status = rec.get("status", "ok")
        line = "%s%s%-22s %9.2f ms  (self %8.2f ms)" % (
            prefix,
            branch,
            rec.get("name", "?"),
            dur_ms,
            self_ms,
        )
        if status != "ok":
            line += "  [%s]" % status
        attrs = _fmt_attrs(rec.get("attrs") or {})
        if attrs:
            line += "  " + attrs
        lines.append(line)
        kids = children.get(rec.get("span_id"), [])
        ext = "   " if is_last else "│  "
        for i, kid in enumerate(kids):
            walk(kid, prefix + ext, i == len(kids) - 1)

    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1)
    return "\n".join(lines)


def trace_chrome(doc: Dict[str, Any]) -> Dict[str, Any]:
    """One trace as a Chrome-trace document (``chrome://tracing`` /
    Perfetto), following :mod:`repro.obs.timeline` conventions: ``X``
    complete slices in microseconds rebased to the earliest span, one
    lane ("thread") per tree depth, ``M`` metadata naming the lanes."""

    from .timeline import chrome_document

    spans = list(doc.get("spans", []))
    roots, children = _index_spans(spans)
    t0 = min((rec.get("ts", 0.0) for rec in spans), default=0.0)
    events: List[Dict[str, Any]] = []
    depths: Dict[str, int] = {}

    def walk(rec: Dict[str, Any], depth: int) -> None:
        depths.setdefault(rec.get("name", "span"), depth)
        args = dict(rec.get("attrs") or {})
        args["span_id"] = rec.get("span_id")
        if rec.get("status", "ok") != "ok":
            args["status"] = rec.get("status")
        events.append(
            {
                "name": rec.get("name", "span"),
                "cat": "trace",
                "ph": "X",
                "pid": 0,
                "tid": depth,
                "ts": max(0.0, (rec.get("ts", 0.0) - t0)) * 1e6,
                "dur": max(0.0, rec.get("dur_s", 0.0)) * 1e6,
                "args": args,
            }
        )
        for kid in children.get(rec.get("span_id"), []):
            walk(kid, depth + 1)

    for root in roots:
        walk(root, 0)
    # Clamp each lane non-decreasing (clock skew across threads).
    prev_end: Dict[int, float] = {}
    for ev in sorted(events, key=lambda e: (e["tid"], e["ts"])):
        floor = prev_end.get(ev["tid"], 0.0)
        if ev["ts"] < floor:
            ev["ts"] = floor
        prev_end[ev["tid"]] = ev["ts"] + ev["dur"]
    meta: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "manymap trace %s" % doc.get("trace_id", "?")},
        }
    ]
    for depth in sorted({ev["tid"] for ev in events}):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": depth,
                "args": {"name": "depth %d" % depth},
            }
        )
    return chrome_document(
        meta + sorted(events, key=lambda e: e["ts"]),
        run_id=doc.get("trace_id", ""),
        label=doc.get("root", ""),
        status=doc.get("status", "ok"),
        duration_ms=doc.get("duration_ms", 0.0),
    )
