"""Live exposition of the run registries: OpenMetrics text + JSON status.

Everything the observability layer collects (PR 2/5) was post-mortem:
counters, histograms and gauges only materialized into a manifest after
the run ended. This module is the *export* layer over the same
registries — one shared point-in-time sampling path
(:class:`RunSampler`) that both the progress heartbeat
(:mod:`repro.obs.progress`) and the in-run status endpoint
(:mod:`repro.obs.statusd`) read through, plus two formatters over a
sample:

* :func:`render_openmetrics` — Prometheus / OpenMetrics text format.
  Counters become ``<name>_total`` counter families, gauges become
  gauge families, and the log2-bucket histograms become real
  OpenMetrics histograms: bucket ``e`` (covering ``[2**(e-1), 2**e)``)
  contributes a cumulative ``le="2**e"`` bucket, the ``zeros`` slot
  folds into every bucket (zero is ≤ any positive bound), and
  ``le="+Inf"``/``_count``/``_sum`` close the family. Any scraper that
  speaks Prometheus exposition can consume ``GET /metrics`` directly.
* :func:`status_record` — the JSON ``/status`` document: the heartbeat
  record (reads done, rates, GCUPS, ETA) plus queue-depth gauges,
  batch occupancy and fault counters.

Sampling never touches the hot path: workers keep incrementing their
lock-free shards and the sampler takes best-effort snapshots at poll
frequency, exactly like the progress heartbeat always has.

ETA uses a **sliding-window rate** (the last :data:`ETA_WINDOW`
samples), not the cumulative average, so after a slow warm-up chunk
the estimate reflects current throughput; it is ``None`` whenever the
window rate is zero or the total is unknown.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Dict, Optional

from .counters import COUNTERS, counter_delta
from .hist import HISTOGRAMS, hist_delta

__all__ = [
    "ETA_WINDOW",
    "RunSampler",
    "metric_name",
    "render_openmetrics",
    "status_record",
]

#: Sliding-window width (samples) for the ETA rate estimate.
ETA_WINDOW = 8


class RunSampler:
    """One run's point-in-time view over the shared registries.

    With a :class:`~repro.obs.telemetry.Telemetry` the counter and
    histogram baselines are the telemetry's (taken at its
    construction); without one, baselines are taken when the sampler is
    built. ``total_reads`` enables the ETA estimate (``None`` for
    streamed inputs of unknown length).

    :meth:`sample` is the single heartbeat-record producer shared by
    the progress reporter and the status daemon. Calls with
    ``update=True`` (the heartbeat) advance the sliding rate window;
    read-only calls (``update=False``, the status endpoint) compute the
    window rate against the existing window without perturbing the
    heartbeat's cadence.
    """

    def __init__(
        self,
        telemetry=None,
        total_reads: Optional[int] = None,
        window: int = ETA_WINDOW,
    ) -> None:
        self.telemetry = telemetry
        self.total_reads = total_reads
        self._t0 = time.monotonic()
        self._baseline: Dict[str, int] = (
            {} if telemetry is not None else COUNTERS.totals()
        )
        self._hist_baseline: Dict[str, Dict] = (
            {} if telemetry is not None else HISTOGRAMS.snapshot()
        )
        # (elapsed_s, reads_done) points; seeded with the run origin so
        # the very first sample already has a window rate.
        self._window: "deque" = deque([(0.0, 0)], maxlen=max(2, window))
        self._lock = threading.Lock()

    @property
    def run_id(self) -> str:
        return getattr(self.telemetry, "run_id", "")

    # -- registry views ------------------------------------------------ #

    def counters(self) -> Dict[str, int]:
        """Run-scoped counter totals (live, best-effort mid-run)."""
        if self.telemetry is not None:
            return self.telemetry.counters()
        return counter_delta(COUNTERS.totals(), self._baseline)

    def gauges(self) -> Dict[str, float]:
        """The run's gauge snapshot (empty without a telemetry)."""
        if self.telemetry is not None:
            return self.telemetry.gauges.snapshot()
        return {}

    def histograms(self) -> Dict[str, Dict]:
        """Run-scoped histograms in serialized (``to_json``) form."""
        if self.telemetry is not None:
            return self.telemetry.histograms_raw()
        return hist_delta(HISTOGRAMS.snapshot(), self._hist_baseline)

    # -- the heartbeat record ------------------------------------------ #

    def sample(self, final: bool = False, update: bool = True) -> Dict:
        """One heartbeat record sampled from the shared registries."""
        counters = self.counters()
        elapsed = time.monotonic() - self._t0
        done = int(counters.get("reads_done", 0))
        cells = int(counters.get("dp_cells", 0))
        rate = done / elapsed if elapsed > 0 else 0.0
        with self._lock:
            w_t, w_done = self._window[0]
            last_t, last_done = self._window[-1]
            if update:
                self._window.append((elapsed, done))
        w_dt = elapsed - w_t
        window_rate = (done - w_done) / w_dt if w_dt > 0 else 0.0
        dt = elapsed - last_t
        interval_rate = (done - last_done) / dt if dt > 0 else 0.0
        eta: Optional[float] = None
        if self.total_reads is not None and window_rate > 0:
            eta = max(self.total_reads - done, 0) / window_rate
        queues: Dict[str, float] = {}
        for k, v in self.gauges().items():
            if "queue" in k or k.endswith("reorder.reads.max"):
                queues[k] = v
        return {
            "record": "progress",
            "run_id": self.run_id,
            "final": bool(final),
            "elapsed_s": elapsed,
            "reads_done": done,
            "total_reads": self.total_reads,
            "reads_per_s": rate,
            "window_reads_per_s": window_rate,
            "interval_reads_per_s": interval_rate,
            "dp_cells": cells,
            # aggregate GCUPS: cell updates over wall-clock, all workers.
            "gcups": cells / elapsed / 1e9 if elapsed > 0 else 0.0,
            "quarantined": int(counters.get("fault.quarantined", 0)),
            "queues": queues,
            "eta_s": eta,
        }


# --------------------------------------------------------------------- #
# OpenMetrics / Prometheus text exposition


def metric_name(name: str, prefix: str = "manymap_") -> str:
    """A registry key as a legal Prometheus metric name.

    Dots and every other non-``[a-zA-Z0-9_]`` character become ``_``
    (``fault.quarantined`` → ``manymap_fault_quarantined``).
    """
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return prefix + safe


def _fmt(value: float) -> str:
    """Exposition float formatting: integers render without a dot."""
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _hist_lines(
    name: str, h: Dict, lines: list, exemplars: Optional[Dict] = None
) -> None:
    """One serialized histogram as a cumulative-``le`` family.

    ``exemplars`` maps a bucket's log2 exponent to ``(value, trace_id,
    unix_ts)``; a matching bucket line gets the OpenMetrics exemplar
    suffix (``# {trace_id="..."} value ts``), linking that latency
    bucket to a concrete kept trace.
    """
    lines.append(f"# TYPE {name} histogram")
    count = int(h.get("count", 0))
    # The zeros slot holds values <= 0, which are below every positive
    # log2 bound, so it seeds the cumulative count.
    cum = int(h.get("zeros", 0))
    for e in sorted(int(k) for k in (h.get("buckets") or {})):
        cum += int(h["buckets"][str(e)])
        line = f'{name}_bucket{{le="{_fmt(math.ldexp(1.0, e))}"}} {cum}'
        ex = exemplars.get(e) if exemplars else None
        if ex is not None:
            value, trace_id, ts = ex
            line += (
                f' # {{trace_id="{trace_id}"}} {_fmt(value)} {_fmt(ts)}'
            )
        lines.append(line)
    lines.append(f'{name}_bucket{{le="+Inf"}} {count}')
    lines.append(f"{name}_count {count}")
    lines.append(f"{name}_sum {_fmt(h.get('sum', 0.0))}")


def render_openmetrics(
    counters: Dict[str, int],
    gauges: Optional[Dict[str, float]] = None,
    histograms: Optional[Dict[str, Dict]] = None,
    exemplars: Optional[Dict[str, Dict]] = None,
) -> str:
    """Render registry snapshots as OpenMetrics text (ends in ``# EOF``).

    ``exemplars`` (as returned by
    :meth:`repro.obs.tracing.Tracer.exemplars`) attaches per-bucket
    trace-id exemplars to matching histogram families — the serve
    plane passes the live tracer's snapshot so a p99 bucket names a
    trace you can fetch at ``GET /trace/<id>``.
    """
    lines: list = []
    for key in sorted(counters):
        name = metric_name(key)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}_total {_fmt(counters[key])}")
    for key in sorted(gauges or {}):
        name = metric_name(key)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(gauges[key])}")
    for key in sorted(histograms or {}):
        _hist_lines(
            metric_name(key),
            histograms[key],
            lines,
            exemplars=(exemplars or {}).get(key),
        )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


#: Content type a compliant OpenMetrics scraper expects.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def status_record(sampler: RunSampler) -> Dict:
    """The ``/status`` JSON document: heartbeat + occupancy + faults."""
    from .metrics import batch_summary, serve_summary

    counters = sampler.counters()
    rec = sampler.sample(update=False)
    rec["record"] = "status"
    rec["batch"] = batch_summary(counters)
    rec["serve"] = serve_summary(counters, sampler.gauges())
    rec["faults"] = {
        k.split(".", 1)[1]: v
        for k, v in counters.items()
        if k.startswith("fault.")
    }
    return rec
