"""In-run status endpoint: a stdlib HTTP daemon over the live registries.

ROADMAP item 2 (mapping-as-a-service) needs the progress/gauge
registries exposed as a live status endpoint; this is that substrate.
``map --status-port N`` (or :attr:`repro.api.MapOptions.status_port`)
mounts a :class:`StatusServer` for the duration of the run: a
``ThreadingHTTPServer`` on a daemon thread, bound to ``127.0.0.1``
(``port=0`` asks the OS for a free port — the bound port is logged and
available as :attr:`StatusServer.port`), serving:

``GET /metrics``
    The run's counters, gauges and histograms as OpenMetrics /
    Prometheus text (:func:`repro.obs.export.render_openmetrics`) —
    point a Prometheus scrape job straight at it.
``GET /status``
    One JSON document: the heartbeat record (reads done, rates, GCUPS,
    sliding-window ETA, run_id), queue-depth gauges, batch occupancy
    and fault counters (:func:`repro.obs.export.status_record`).
``GET /events``
    The recent tail of the structured event ring
    (:data:`repro.obs.events.EVENTS`); ``?limit=N``, ``?kind=K`` and
    ``?after_seq=S`` filter it.
``GET /healthz``
    ``200 ok`` while the server is up — a liveness probe.

Routing and the daemon/bind/port-0 lifecycle are the shared
:mod:`repro.obs.httpd` plumbing — the ``repro serve`` front-end mounts
the same :func:`repro.obs.httpd.obs_route` surface on its own port, so
a scrape job configured for one works unchanged against the other.

Requests *sample* the same lock-free shards the heartbeat samples; the
mapping hot path is never touched, so scraping cannot slow a run (the
overhead gate in ``benchmarks/bench_metrics_smoke.py`` holds this to
<=2%). Works on all four backends: the process backends already merge
worker counter/histogram deltas into the parent registries per
completed chunk, so mid-run samples see live totals, not end-of-run
ones.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler
from typing import Optional
from urllib.parse import urlparse

from .export import RunSampler
from .httpd import DaemonHTTPServer, obs_route, text_reply
from .logs import get_logger

__all__ = ["StatusServer"]


class _StatusHandler(BaseHTTPRequestHandler):
    """Routes one request against the server's sampler. Stateless."""

    server_version = "manymap-statusd"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        reply = obs_route(
            self.server.sampler,
            url.path,
            url.query,
            traces=getattr(self.server, "traces", None),
        )
        if reply is None:
            reply = text_reply(404, "not found\n")
        self._reply(*reply)

    # -- plumbing ------------------------------------------------------ #

    def _reply(self, code: int, ctype: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args) -> None:  # pragma: no cover
        # Route access logs through our logger at debug, not stderr spam.
        get_logger("statusd").debug("%s " + fmt, self.address_string(), *args)


class StatusServer(DaemonHTTPServer):
    """The per-run HTTP status daemon; a context manager.

    ``sampler`` is the run's shared :class:`RunSampler` (the same one
    the progress heartbeat uses). ``port=0`` binds an OS-assigned free
    port; read :attr:`port` (or :attr:`url`) after :meth:`start` for
    the real one. Serving happens on daemon threads, so a crashed or
    interrupted run never hangs on the server.
    """

    handler_class = _StatusHandler
    log_name = "statusd"

    def __init__(
        self,
        sampler: Optional[RunSampler] = None,
        port: int = 0,
        host: str = "127.0.0.1",
        traces=None,
    ) -> None:
        super().__init__(port=port, host=host)
        self.sampler = sampler or RunSampler()
        #: optional :class:`repro.obs.tracing.TraceStore` — mounts
        #: ``/trace/<id>`` and ``/traces`` on this daemon when set.
        self.traces = traces

    def _configure(self, httpd) -> None:
        httpd.sampler = self.sampler
        httpd.traces = self.traces

    def start(self) -> "StatusServer":
        super().start()
        return self

    def __enter__(self) -> "StatusServer":
        return self.start()
