"""In-run status endpoint: a stdlib HTTP daemon over the live registries.

ROADMAP item 2 (mapping-as-a-service) needs the progress/gauge
registries exposed as a live status endpoint; this is that substrate.
``map --status-port N`` (or :attr:`repro.api.MapOptions.status_port`)
mounts a :class:`StatusServer` for the duration of the run: a
``ThreadingHTTPServer`` on a daemon thread, bound to ``127.0.0.1``
(``port=0`` asks the OS for a free port — the bound port is logged and
available as :attr:`StatusServer.port`), serving:

``GET /metrics``
    The run's counters, gauges and histograms as OpenMetrics /
    Prometheus text (:func:`repro.obs.export.render_openmetrics`) —
    point a Prometheus scrape job straight at it.
``GET /status``
    One JSON document: the heartbeat record (reads done, rates, GCUPS,
    sliding-window ETA, run_id), queue-depth gauges, batch occupancy
    and fault counters (:func:`repro.obs.export.status_record`).
``GET /events``
    The recent tail of the structured event ring
    (:data:`repro.obs.events.EVENTS`); ``?limit=N``, ``?kind=K`` and
    ``?after_seq=S`` filter it.
``GET /healthz``
    ``200 ok`` while the server is up — a liveness probe.

Requests *sample* the same lock-free shards the heartbeat samples; the
mapping hot path is never touched, so scraping cannot slow a run (the
overhead gate in ``benchmarks/bench_metrics_smoke.py`` holds this to
<=2%). Works on all four backends: the process backends already merge
worker counter/histogram deltas into the parent registries per
completed chunk, so mid-run samples see live totals, not end-of-run
ones.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from .events import EVENTS
from .export import OPENMETRICS_CONTENT_TYPE, RunSampler, render_openmetrics, status_record
from .logs import get_logger

__all__ = ["StatusServer"]


class _StatusHandler(BaseHTTPRequestHandler):
    """Routes one request against the server's sampler. Stateless."""

    server_version = "manymap-statusd"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        route = url.path.rstrip("/") or "/"
        if route == "/metrics":
            sampler = self.server.sampler
            body = render_openmetrics(
                sampler.counters(), sampler.gauges(), sampler.histograms()
            ).encode("utf-8")
            self._reply(200, OPENMETRICS_CONTENT_TYPE, body)
        elif route == "/status":
            rec = status_record(self.server.sampler)
            self._reply_json(200, rec)
        elif route == "/events":
            q = parse_qs(url.query)

            def _int(key: str, default):
                try:
                    return int(q[key][0])
                except (KeyError, IndexError, ValueError):
                    return default

            events = EVENTS.recent(
                limit=_int("limit", 100),
                kind=q.get("kind", [None])[0],
                after_seq=_int("after_seq", 0),
            )
            self._reply_json(
                200,
                {
                    "record": "events",
                    "run_id": self.server.sampler.run_id,
                    "seq": EVENTS.seq,
                    "counts": EVENTS.counts(),
                    "events": events,
                },
            )
        elif route == "/" or route == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    # -- plumbing ------------------------------------------------------ #

    def _reply(self, code: int, ctype: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, code: int, doc) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self._reply(code, "application/json; charset=utf-8", body)

    def log_message(self, fmt, *args) -> None:  # pragma: no cover
        # Route access logs through our logger at debug, not stderr spam.
        get_logger("statusd").debug("%s " + fmt, self.address_string(), *args)


class StatusServer:
    """The per-run HTTP status daemon; a context manager.

    ``sampler`` is the run's shared :class:`RunSampler` (the same one
    the progress heartbeat uses). ``port=0`` binds an OS-assigned free
    port; read :attr:`port` (or :attr:`url`) after :meth:`start` for
    the real one. Serving happens on daemon threads, so a crashed or
    interrupted run never hangs on the server.
    """

    def __init__(
        self,
        sampler: Optional[RunSampler] = None,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        if port < 0 or port > 65535:
            raise ValueError(f"port must be in [0, 65535]: {port}")
        self.sampler = sampler or RunSampler()
        self._requested = (host, int(port))
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._log = get_logger("statusd")

    # -- lifecycle ----------------------------------------------------- #

    @property
    def port(self) -> int:
        """The bound port (0 until :meth:`start`)."""
        return self._httpd.server_address[1] if self._httpd else 0

    @property
    def url(self) -> str:
        host = self._requested[0]
        return f"http://{host}:{self.port}" if self._httpd else ""

    def start(self) -> "StatusServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer(self._requested, _StatusHandler)
        httpd.daemon_threads = True
        httpd.sampler = self.sampler
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="statusd",
            daemon=True,
            kwargs={"poll_interval": 0.1},
        )
        self._thread.start()
        self._log.info("status server listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread; idempotent."""
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is None:
            return
        httpd.shutdown()
        if thread is not None:
            thread.join()
        httpd.server_close()

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
