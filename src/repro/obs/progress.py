"""Live progress heartbeat: periodic run-status lines off the hot path.

minimap2 reports runtime progress and peak RSS as it maps; a
multi-hour mapping run here should be just as legible. A
:class:`ProgressReporter` runs one daemon thread that wakes every
``interval`` seconds and *samples* the already-shared observability
state — the run-scoped counter delta (reads done, DP cells), the
``stream.*`` queue gauges, the fault counters — so the mapping hot
path pays nothing: workers keep incrementing their lock-free shards
and the heartbeat reads a snapshot at 0.5 Hz-ish, never the other way
around.

The sampling itself lives in :class:`repro.obs.export.RunSampler` — one
point-in-time record producer shared with the in-run status endpoint
(:mod:`repro.obs.statusd`), so ``/status`` and the heartbeat JSONL
always agree field for field. The ETA comes from the sampler's
sliding-window rate (current throughput, not the cumulative average —
a slow warm-up chunk stops haunting the estimate after the window
rolls past it) and is ``null`` whenever the window rate is zero or the
total is unknown.

Each beat emits (a) one human line through the ``repro.progress``
logger (stderr), (b), when a path is given, one JSON record to a
heartbeat JSONL file stamped with the run id, and (c) a ``heartbeat``
event on the global :data:`~repro.obs.events.EVENTS` bus. The reporter
always emits a final beat on :meth:`stop` — inside a ``finally`` this
guarantees at least one line and a joined thread whether the run
succeeded, was interrupted (KeyboardInterrupt), or aborted on a fault.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Optional

from .events import EVENTS
from .export import RunSampler
from .logs import get_logger

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Daemon-thread heartbeat over the shared counters and gauges.

    ``telemetry`` scopes the sampled counters to the run (its
    construction-time baseline); without one, the baseline is taken
    when the reporter starts. ``total_reads`` enables the ETA estimate
    (unknown for streamed inputs — ``eta_s`` is then ``null``).
    ``path`` appends one JSON record per beat; stderr logging happens
    either way. ``sampler`` shares an existing
    :class:`~repro.obs.export.RunSampler` (the status daemon's) instead
    of building one at :meth:`start`.
    """

    def __init__(
        self,
        telemetry=None,
        interval: float = 2.0,
        total_reads: Optional[int] = None,
        path: Optional[str] = None,
        sampler: Optional[RunSampler] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0: {interval}")
        self.interval = float(interval)
        self.telemetry = telemetry
        self.total_reads = total_reads
        self.path = path
        self.beats = 0
        self.sampler = sampler
        self._fh = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._log = get_logger("progress")
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------- #

    def start(self) -> "ProgressReporter":
        if self._thread is not None:
            return self
        if self.sampler is None:
            self.sampler = RunSampler(
                telemetry=self.telemetry, total_reads=self.total_reads
            )
        if self.path:
            self._fh = open(self.path, "a")
        self._thread = threading.Thread(
            target=self._run, name="progress-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Final beat + clean shutdown; idempotent, safe mid-exception."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None
        self._emit(final=True)
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ProgressReporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------ #

    def sample(self, final: bool = False) -> Dict:
        """One heartbeat record, sampled from the shared registries."""
        if self.sampler is None:  # sampling before start(): fresh scope
            self.sampler = RunSampler(
                telemetry=self.telemetry, total_reads=self.total_reads
            )
        return self.sampler.sample(final=final)

    # -- emission ------------------------------------------------------ #

    def _emit(self, final: bool = False) -> None:
        with self._lock:
            rec = self.sample(final=final)
            self.beats += 1
            eta = rec["eta_s"]
            self._log.info(
                "%s%d reads in %.1fs (%.1f reads/s, %.4f GCUPS)%s%s",
                "done: " if final else "",
                rec["reads_done"],
                rec["elapsed_s"],
                rec["reads_per_s"],
                rec["gcups"],
                f", {rec['quarantined']} quarantined"
                if rec["quarantined"]
                else "",
                f", ETA {eta:.0f}s" if eta is not None else "",
            )
            if self._fh is not None:
                self._fh.write(json.dumps(rec, sort_keys=True))
                self._fh.write("\n")
                self._fh.flush()
            EVENTS.emit(
                "heartbeat",
                run_id=rec["run_id"],
                final=rec["final"],
                reads_done=rec["reads_done"],
                reads_per_s=rec["reads_per_s"],
                gcups=rec["gcups"],
                eta_s=rec["eta_s"],
            )

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._emit()
            except Exception:  # pragma: no cover - never kill the run
                self._log.exception("progress heartbeat failed")
                return
