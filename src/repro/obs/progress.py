"""Live progress heartbeat: periodic run-status lines off the hot path.

minimap2 reports runtime progress and peak RSS as it maps; a
multi-hour mapping run here should be just as legible. A
:class:`ProgressReporter` runs one daemon thread that wakes every
``interval`` seconds and *samples* the already-shared observability
state — the run-scoped counter delta (reads done, DP cells), the
``stream.*`` queue gauges, the fault counters — so the mapping hot
path pays nothing: workers keep incrementing their lock-free shards
and the heartbeat reads a snapshot at 0.5 Hz-ish, never the other way
around.

Each beat emits (a) one human line through the ``repro.progress``
logger (stderr) and (b), when a path is given, one JSON record to a
heartbeat JSONL file stamped with the run id. The reporter always
emits a final beat on :meth:`stop` — inside a ``finally`` this
guarantees at least one line and a joined thread whether the run
succeeded, was interrupted (KeyboardInterrupt), or aborted on a fault.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Optional

from .counters import COUNTERS, counter_delta
from .logs import get_logger

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Daemon-thread heartbeat over the shared counters and gauges.

    ``telemetry`` scopes the sampled counters to the run (its
    construction-time baseline); without one, the baseline is taken
    when the reporter starts. ``total_reads`` enables the ETA estimate
    (unknown for streamed inputs — ``eta_s`` is then ``null``).
    ``path`` appends one JSON record per beat; stderr logging happens
    either way.
    """

    def __init__(
        self,
        telemetry=None,
        interval: float = 2.0,
        total_reads: Optional[int] = None,
        path: Optional[str] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0: {interval}")
        self.interval = float(interval)
        self.telemetry = telemetry
        self.total_reads = total_reads
        self.path = path
        self.beats = 0
        self._fh = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = 0.0
        self._baseline: Dict[str, int] = {}
        self._last = (0.0, 0)  # (elapsed, reads_done) of the previous beat
        self._log = get_logger("progress")
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------- #

    def start(self) -> "ProgressReporter":
        if self._thread is not None:
            return self
        self._t0 = time.monotonic()
        if self.telemetry is None:
            self._baseline = COUNTERS.totals()
        if self.path:
            self._fh = open(self.path, "a")
        self._thread = threading.Thread(
            target=self._run, name="progress-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Final beat + clean shutdown; idempotent, safe mid-exception."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None
        self._emit(final=True)
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ProgressReporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------ #

    def _counters(self) -> Dict[str, int]:
        if self.telemetry is not None:
            return self.telemetry.counters()
        return counter_delta(COUNTERS.totals(), self._baseline)

    def sample(self, final: bool = False) -> Dict:
        """One heartbeat record, sampled from the shared registries."""
        counters = self._counters()
        elapsed = time.monotonic() - self._t0
        done = int(counters.get("reads_done", 0))
        cells = int(counters.get("dp_cells", 0))
        rate = done / elapsed if elapsed > 0 else 0.0
        last_t, last_done = self._last
        dt = elapsed - last_t
        interval_rate = (done - last_done) / dt if dt > 0 else 0.0
        self._last = (elapsed, done)
        eta: Optional[float] = None
        if self.total_reads is not None and rate > 0:
            eta = max(self.total_reads - done, 0) / rate
        queues: Dict[str, float] = {}
        quarantined = int(counters.get("fault.quarantined", 0))
        if self.telemetry is not None:
            for k, v in self.telemetry.gauges.snapshot().items():
                if "queue" in k or k.endswith("reorder.reads.max"):
                    queues[k] = v
        record = {
            "record": "progress",
            "run_id": getattr(self.telemetry, "run_id", ""),
            "final": bool(final),
            "elapsed_s": elapsed,
            "reads_done": done,
            "total_reads": self.total_reads,
            "reads_per_s": rate,
            "interval_reads_per_s": interval_rate,
            "dp_cells": cells,
            # aggregate GCUPS: cell updates over wall-clock, all workers.
            "gcups": cells / elapsed / 1e9 if elapsed > 0 else 0.0,
            "quarantined": quarantined,
            "queues": queues,
            "eta_s": eta,
        }
        return record

    # -- emission ------------------------------------------------------ #

    def _emit(self, final: bool = False) -> None:
        with self._lock:
            rec = self.sample(final=final)
            self.beats += 1
            eta = rec["eta_s"]
            self._log.info(
                "%s%d reads in %.1fs (%.1f reads/s, %.4f GCUPS)%s%s",
                "done: " if final else "",
                rec["reads_done"],
                rec["elapsed_s"],
                rec["reads_per_s"],
                rec["gcups"],
                f", {rec['quarantined']} quarantined"
                if rec["quarantined"]
                else "",
                f", ETA {eta:.0f}s" if eta is not None else "",
            )
            if self._fh is not None:
                self._fh.write(json.dumps(rec, sort_keys=True))
                self._fh.write("\n")
                self._fh.flush()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._emit()
            except Exception:  # pragma: no cover - never kill the run
                self._log.exception("progress heartbeat failed")
                return
