"""Tiny JSON-Schema-subset validator (stdlib only, no new deps).

CI validates every emitted metrics manifest against the checked-in
``benchmarks/metrics_schema.json`` so the perf-trajectory artifacts
stay machine-readable across commits. Supported keywords — the subset
that schema uses: ``type`` (scalar or list), ``properties``,
``required``, ``items``, ``enum``, ``minimum``, ``maximum``,
``additionalProperties`` (boolean form).
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["SchemaError", "validate", "assert_valid"]

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """Raised by :func:`assert_valid` with every violation listed."""


def _type_ok(instance, name: str) -> bool:
    if name == "integer":
        return isinstance(instance, int) and not isinstance(instance, bool)
    if name == "number":
        return isinstance(instance, (int, float)) and not isinstance(
            instance, bool
        )
    py = _TYPES.get(name)
    return py is not None and isinstance(instance, py) and not (
        py is not bool and isinstance(instance, bool) and name != "boolean"
    )


def validate(instance, schema: Dict, path: str = "$") -> List[str]:
    """Check ``instance`` against ``schema``; return a list of errors."""
    errors: List[str] = []
    t = schema.get("type")
    if t is not None:
        names = t if isinstance(t, list) else [t]
        if not any(_type_ok(instance, name) for name in names):
            errors.append(
                f"{path}: expected type {t}, got {type(instance).__name__}"
            )
            return errors  # structural keywords below assume the type
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']}")
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
        if "maximum" in schema and instance > schema["maximum"]:
            errors.append(f"{path}: {instance} > maximum {schema['maximum']}")
    if isinstance(instance, dict):
        for req in schema.get("required", []):
            if req not in instance:
                errors.append(f"{path}: missing required property {req!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in instance:
                errors.extend(validate(instance[key], sub, f"{path}.{key}"))
        if schema.get("additionalProperties") is False:
            for key in instance:
                if key not in props:
                    errors.append(f"{path}: unexpected property {key!r}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return errors


def assert_valid(instance, schema: Dict) -> None:
    """Raise :class:`SchemaError` listing every violation, if any."""
    errors = validate(instance, schema)
    if errors:
        raise SchemaError(
            f"{len(errors)} schema violation(s):\n" + "\n".join(errors)
        )
