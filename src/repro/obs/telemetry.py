"""Per-run telemetry: run-scoped counters and per-read trace spans.

A :class:`Telemetry` object scopes the process-global
:data:`~repro.obs.counters.COUNTERS` to one mapping run (baseline
snapshot at construction, delta at :meth:`Telemetry.counters`) and —
when tracing is enabled — collects one span record per read:

.. code-block:: json

    {"read": "r12", "length": 812, "worker": "pid:4242/MainThread",
     "chunk": 3, "spans": {"seed_chain": 0.0021, "align": 0.0154}}

Span records are produced wherever the read is actually mapped — the
serial loop, a pool thread, or a worker process — and shipped back to
the parent alongside the results, so the trace is complete on every
backend. :meth:`Telemetry.write_trace` emits them as JSONL.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional

from .counters import COUNTERS, counter_delta
from .gauges import GaugeSet

__all__ = ["Telemetry", "worker_id", "read_span"]


def worker_id() -> str:
    """Identity of the executing worker: process id + thread name."""
    return f"pid:{os.getpid()}/{threading.current_thread().name}"


def read_span(
    read_name: str,
    read_len: int,
    seed_chain_s: float,
    align_s: float,
    chunk: Optional[int] = None,
) -> Dict:
    """One trace record for one read, stamped with the current worker."""
    return {
        "read": read_name,
        "length": int(read_len),
        "worker": worker_id(),
        "chunk": chunk,
        "spans": {
            "seed_chain": seed_chain_s,
            "align": align_s,
        },
    }


class Telemetry:
    """Counter scoping + trace span collection for one mapping run."""

    def __init__(self, trace: bool = False) -> None:
        #: when False, span recording is skipped everywhere (zero cost).
        self.trace = bool(trace)
        self.spans: List[Dict] = []
        #: execution-machinery gauges (queue depths, stall seconds);
        #: populated by the streaming backend, surfaced in ``--metrics``.
        self.gauges = GaugeSet()
        #: faults the run's :class:`~repro.runtime.faults.FaultPolicy`
        #: absorbed (quarantines / watchdog fallbacks), one
        #: :class:`~repro.runtime.faults.FaultRecord` each.
        self.faults: List = []
        self._baseline = COUNTERS.totals()

    # -- spans --------------------------------------------------------- #

    def record(self, span: Dict) -> None:
        if self.trace:
            self.spans.append(span)

    def extend(self, spans: List[Dict]) -> None:
        if self.trace and spans:
            self.spans.extend(spans)

    # -- faults -------------------------------------------------------- #

    def record_faults(self, faults: List) -> None:
        """Collect fault records shipped home with backend results."""
        if faults:
            self.faults.extend(faults)

    def fault_summary(self) -> Dict:
        """The manifest's ``faults`` object (schema v3, additive)."""
        return {
            "n_faults": len(self.faults),
            "quarantined": [
                f.to_json() for f in self.faults if f.action == "quarantined"
            ],
            "fallbacks": [
                f.to_json() for f in self.faults if f.action == "fallback"
            ],
        }

    # -- counters ------------------------------------------------------ #

    def absorb(self, delta: Dict[str, int]) -> None:
        """Merge a worker process's counter delta into this process."""
        if delta:
            COUNTERS.merge(delta)

    def counters(self) -> Dict[str, int]:
        """Counter totals accumulated since this run started."""
        return counter_delta(COUNTERS.totals(), self._baseline)

    # -- output -------------------------------------------------------- #

    def write_trace(self, path: str) -> int:
        """Write the collected spans as JSONL; returns the record count."""
        with open(path, "w") as fh:
            for span in self.spans:
                fh.write(json.dumps(span, sort_keys=True))
                fh.write("\n")
        return len(self.spans)
