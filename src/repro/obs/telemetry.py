"""Per-run telemetry: run-scoped counters/histograms and trace spans.

A :class:`Telemetry` object scopes the process-global
:data:`~repro.obs.counters.COUNTERS` and
:data:`~repro.obs.hist.HISTOGRAMS` registries to one mapping run
(baseline snapshot at construction, delta at
:meth:`Telemetry.counters` / :meth:`Telemetry.histograms`) and — when
tracing is enabled — collects one span record per read:

.. code-block:: json

    {"read": "r12", "length": 812, "worker": "pid:4242/MainThread",
     "chunk": 3, "ts": 1754000000.123,
     "spans": {"seed_chain": 0.0021, "align": 0.0154}}

Span records are produced wherever the read is actually mapped — the
serial loop, a pool thread, or a worker process — and shipped back to
the parent alongside the results, so the trace is complete on every
backend. ``ts`` is the wall-clock start (epoch seconds, comparable
across worker processes) that the timeline exporter
(:mod:`repro.obs.timeline`) places events with.

Every run carries a ``run_id`` (one uuid per Telemetry) stamped into
trace files, metrics manifests, timeline exports, fault sidecars, and
log lines, so a run's artifacts can be joined after the fact.

Traces spill incrementally: :meth:`Telemetry.open_trace` attaches a
JSONL sink and every span (or worker batch of spans) is written as it
arrives instead of buffering the whole run in memory — on
multi-million-read inputs the trace costs O(1) memory. Without a sink,
spans buffer in :attr:`Telemetry.spans` and
:meth:`Telemetry.write_trace` emits them at the end; both paths write
the same format (a ``{"record": "run", ...}`` header line followed by
one span per line), which :func:`iter_trace` reads back.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Dict, Iterator, List, Optional

from .counters import COUNTERS, counter_delta
from .events import EVENTS
from .gauges import GaugeSet
from .hist import HISTOGRAMS, hist_delta, summarize

__all__ = ["Telemetry", "worker_id", "read_span", "iter_trace"]


def worker_id() -> str:
    """Identity of the executing worker: process id + thread name."""
    return f"pid:{os.getpid()}/{threading.current_thread().name}"


def read_span(
    read_name: str,
    read_len: int,
    seed_chain_s: float,
    align_s: float,
    chunk: Optional[int] = None,
) -> Dict:
    """One trace record for one read, stamped with the current worker.

    ``ts`` (epoch seconds) is derived as *now minus the stage
    durations*, i.e. the moment mapping of this read began — accurate
    to clock-vs-perf_counter skew plus any retry overhead, which is
    far below timeline resolution.
    """
    return {
        "read": read_name,
        "length": int(read_len),
        "worker": worker_id(),
        "chunk": chunk,
        "ts": time.time() - seed_chain_s - align_s,
        "spans": {
            "seed_chain": seed_chain_s,
            "align": align_s,
        },
    }


class Telemetry:
    """Counter/histogram scoping + trace span collection for one run."""

    def __init__(self, trace: bool = False, run_id: Optional[str] = None) -> None:
        #: when False, span recording is skipped everywhere (zero cost).
        self.trace = bool(trace)
        #: one uuid per run; joins manifests/traces/timelines/sidecars.
        self.run_id = run_id or uuid.uuid4().hex
        self.spans: List[Dict] = []
        #: execution-machinery gauges (queue depths, stall seconds);
        #: populated by the streaming backend, surfaced in ``--metrics``.
        self.gauges = GaugeSet()
        #: faults the run's :class:`~repro.runtime.faults.FaultPolicy`
        #: absorbed (quarantines / watchdog fallbacks), one
        #: :class:`~repro.runtime.faults.FaultRecord` each.
        self.faults: List = []
        self._span_count = 0
        self._sink = None
        self._sink_lock = threading.Lock()
        self._baseline = COUNTERS.totals()
        self._hist_baseline = HISTOGRAMS.snapshot()
        self._events_baseline = EVENTS.counts()

    # -- spans --------------------------------------------------------- #

    @property
    def span_count(self) -> int:
        """Spans recorded so far (buffered *or* spilled to the sink)."""
        return self._span_count

    def record(self, span: Dict) -> None:
        if not self.trace:
            return
        self._span_count += 1
        if self._sink is not None:
            with self._sink_lock:
                self._sink.write(json.dumps(span, sort_keys=True))
                self._sink.write("\n")
        else:
            self.spans.append(span)

    def extend(self, spans: List[Dict]) -> None:
        if not (self.trace and spans):
            return
        self._span_count += len(spans)
        if self._sink is not None:
            lines = [json.dumps(s, sort_keys=True) for s in spans]
            with self._sink_lock:
                self._sink.write("\n".join(lines))
                self._sink.write("\n")
                self._sink.flush()  # chunk boundary: keep the file usable
        else:
            self.spans.extend(spans)

    # -- faults -------------------------------------------------------- #

    def record_faults(self, faults: List) -> None:
        """Collect fault records shipped home with backend results.

        This is the parent-side choke point on every backend (serial,
        threads, processes, streaming), so it also emits one ``fault``
        event per record onto the global bus — worker-process buses are
        process-local, but the fault stream still reaches the parent's
        ``/events`` ring and JSONL sink this way.
        """
        if not faults:
            return
        self.faults.extend(faults)
        for f in faults:
            EVENTS.emit(
                "fault",
                run_id=self.run_id,
                read=getattr(f, "read", ""),
                action=getattr(f, "action", ""),
                reason=getattr(f, "reason", ""),
                attempts=getattr(f, "attempts", 0),
            )

    def fault_summary(self) -> Dict:
        """The manifest's ``faults`` object (schema v3, additive)."""
        return {
            "n_faults": len(self.faults),
            "quarantined": [
                f.to_json() for f in self.faults if f.action == "quarantined"
            ],
            "fallbacks": [
                f.to_json() for f in self.faults if f.action == "fallback"
            ],
        }

    # -- counters / histograms ---------------------------------------- #

    def absorb(self, delta: Dict[str, int]) -> None:
        """Merge a worker process's counter delta into this process."""
        if delta:
            COUNTERS.merge(delta)

    def counters(self) -> Dict[str, int]:
        """Counter totals accumulated since this run started."""
        return counter_delta(COUNTERS.totals(), self._baseline)

    def histograms(self) -> Dict[str, Dict]:
        """Run-scoped histogram summaries (manifest ``histograms`` form:
        count/sum/min/max/mean, p50/p90/p99, raw log2 buckets)."""
        return summarize(self.histograms_raw())

    def histograms_raw(self) -> Dict[str, Dict]:
        """Run-scoped histograms in serialized (``to_json``) form —
        what the OpenMetrics exporter renders as cumulative buckets."""
        return hist_delta(HISTOGRAMS.snapshot(), self._hist_baseline)

    def events_summary(self) -> Dict[str, int]:
        """Run-scoped per-kind event counts (manifest ``events`` object,
        schema v6): the global bus's counts minus the construction-time
        baseline."""
        now = EVENTS.counts()
        return {
            k: v - self._events_baseline.get(k, 0)
            for k, v in now.items()
            if v - self._events_baseline.get(k, 0) > 0
        }

    # -- output -------------------------------------------------------- #

    def _header(self) -> Dict:
        from .._version import __version__

        return {
            "record": "run",
            "run_id": self.run_id,
            "tool": "manymap",
            "version": __version__,
        }

    def open_trace(self, path: str) -> None:
        """Attach an incremental JSONL sink: spans spill as they arrive
        (memory stays flat), :attr:`spans` stays empty. Pair with
        :meth:`close_trace`."""
        fh = open(path, "w")
        fh.write(json.dumps(self._header(), sort_keys=True))
        fh.write("\n")
        self._sink = fh

    def close_trace(self) -> int:
        """Flush + detach the incremental sink; returns the span count."""
        if self._sink is not None:
            with self._sink_lock:
                self._sink.close()
                self._sink = None
        return self._span_count

    def write_trace(self, path: str) -> int:
        """Write buffered spans as JSONL (header line + one span per
        line); returns the span count. For runs that used
        :meth:`open_trace` the file already exists — this rewrites the
        buffered form only and is not what you want there."""
        with open(path, "w") as fh:
            fh.write(json.dumps(self._header(), sort_keys=True))
            fh.write("\n")
            for span in self.spans:
                fh.write(json.dumps(span, sort_keys=True))
                fh.write("\n")
        return len(self.spans)


def iter_trace(path: str) -> Iterator[Dict]:
    """Yield span records from a trace JSONL file, skipping the header
    (and any other non-span record kinds added later)."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("record", "span") != "span" and "spans" not in rec:
                continue
            yield rec
