"""Render metrics manifests as the paper's Table 2 / Figure 11 tables.

``manymap report run_a.json run_b.json`` loads one or more manifests
written by ``manymap map --metrics`` and prints the five-stage
seconds/percentage breakdown side by side (Table 2's CPU-vs-KNL
layout), followed by a throughput footer (reads mapped, DP cells,
GCUPS, peak RSS) and — for a single manifest — the counter, gauge and
latency-histogram tables. ``--format markdown|json`` re-renders the
same content for docs and machines; ``--compare A.json B.json`` diffs
two manifests' throughput metrics and flags regressions beyond a
tolerance (the CI perf gate's engine, see
``benchmarks/bench_compare.py``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from ..utils.fmt import human_bytes, si

__all__ = [
    "profile_from_metrics",
    "render_metrics",
    "render_metrics_files",
    "compare_metrics",
    "render_compare",
    "render_trajectory",
    "REPORT_FORMATS",
    "GATED_METRICS",
]

#: Output formats accepted by ``report --format``.
REPORT_FORMATS = ("table", "json", "markdown")

#: ``derived`` metrics gated by ``compare_metrics``: (key, higher_is_better).
#: Throughput metrics regress when they *drop*; informational rows
#: (peak RSS) are reported but never fail the gate — RSS varies too
#: much across machines to gate on.
GATED_METRICS = (
    ("gcups", True),
    ("reads_per_sec", True),
    ("bases_per_sec", True),
)


def profile_from_metrics(metrics: Dict):
    """Rebuild a :class:`PipelineProfile` from a manifest's stage dict."""
    from ..core.profiling import PipelineProfile

    profile = PipelineProfile(label=str(metrics.get("label", "")))
    for stage, seconds in metrics.get("stages", {}).items():
        profile.add(stage, float(seconds))
    return profile


def _footer_line(label: str, metrics: Dict) -> str:
    reads = metrics.get("reads", {})
    derived = metrics.get("derived", {})
    cells = derived.get("dp_cells", 0)
    parts = [
        f"{reads.get('n_mapped', 0)}/{reads.get('n_reads', 0)} reads mapped",
        f"{si(cells)} DP cells",
        f"{derived.get('gcups', 0.0):.4f} GCUPS",
        f"{derived.get('reads_per_sec', 0.0):.2f} reads/s",
        f"peak RSS {human_bytes(metrics.get('peak_rss_bytes', 0))}",
    ]
    run_id = metrics.get("run_id")
    if run_id:
        parts.append(f"run {str(run_id)[:8]}")
    return f"{label}: " + ", ".join(parts)


def _counter_table(counters: Dict[str, int]) -> List[str]:
    if not counters:
        return ["(no counters recorded)"]
    width = max(len(k) for k in counters)
    return [
        f"{name:<{width}}  {counters[name]:>14}"
        for name in sorted(counters)
    ]


def _fmt_value(name: str, value: float) -> str:
    """Histogram cell formatting: latencies in ms, sizes as integers."""
    if name.startswith("latency."):
        return f"{value * 1e3:.3f}ms"
    return f"{value:.0f}"


def _batch_lines(metrics: Dict) -> List[str]:
    """``Batching`` section from the manifest's v5 ``batch`` object.

    Pre-v5 manifests from a batched run still render: the summary is
    recomputed from their wavefront/dispatch counters.
    """
    from .metrics import batch_summary

    batch = metrics.get("batch")
    if batch is None:
        batch = batch_summary(metrics.get("counters", {}))
    if not batch:
        return []
    lines = [
        f"  {batch.get('batches', 0)} batches over "
        f"{batch.get('wavefront_calls', 0)} wavefront calls, "
        f"{batch.get('batched_jobs', 0)}/{batch.get('dispatch_jobs', 0)} "
        f"jobs batched ({batch.get('fallback_jobs', 0)} per-pair fallback)"
    ]
    padded = batch.get("cells_padded", 0)
    if padded:
        lines.append(
            f"  lane occupancy {batch.get('occupancy_pct', 0.0):.1f}% "
            f"(padding waste {batch.get('padding_waste_pct', 0.0):.1f}% "
            f"of {si(padded)} stacked cells)"
        )
    retired = batch.get("lanes_retired", 0)
    lines.append(
        f"  {batch.get('lanes', 0)} lanes total, "
        f"{retired} retired early by zdrop"
    )
    return lines


def _serve_lines(metrics: Dict) -> List[str]:
    """``Serving`` section from the manifest's v7 ``serve`` object.

    Pre-v7 manifests from a serving run still render: the summary is
    recomputed from their ``serve.*`` counters.
    """
    from .metrics import serve_summary

    serve = metrics.get("serve")
    if serve is None:
        serve = serve_summary(
            metrics.get("counters", {}), metrics.get("gauges", {})
        )
    if not serve:
        return []
    lines = [
        f"  {serve.get('requests', 0)} requests "
        f"({serve.get('ok', 0)} ok, {serve.get('errors', 0)} error, "
        f"{serve.get('shed', 0)} shed: "
        f"{serve.get('shed_queue', 0)} queue / "
        f"{serve.get('shed_quota', 0)} quota / "
        f"{serve.get('shed_draining', 0)} draining)",
        f"  {serve.get('batches', 0)} batches "
        f"({serve.get('coalesced_batches', 0)} coalesced >1 request), "
        f"{serve.get('mean_requests_per_batch', 0.0):.2f} requests and "
        f"{serve.get('mean_reads_per_batch', 0.0):.1f} reads per batch",
        f"  queue depth high-water {serve.get('queue_depth_max', 0)}, "
        f"final batch target {serve.get('batch_target_reads', 0)} reads",
    ]
    tenants = serve.get("tenants") or {}
    if tenants:
        per = ", ".join(
            f"{name}={tenants[name]}" for name in sorted(tenants)
        )
        lines.append(f"  tenants: {per}")
    return lines


def _journal_lines(metrics: Dict) -> List[str]:
    """``Durability`` section from the manifest's v8 ``journal`` object."""
    journal = metrics.get("journal")
    if not journal:
        return []
    lines = [
        f"  run dir {journal.get('run_dir', '?')}: "
        f"{journal.get('reads_done', 0)} reads committed in "
        f"{journal.get('commits', 0)} commits "
        f"(every {journal.get('commit_reads', 0)} reads), "
        f"{si(journal.get('output_bytes', 0))}B output "
        f"crc32={journal.get('output_crc32', 0):#010x}",
    ]
    if journal.get("resumed"):
        lines.append(
            f"  resumed: skipped {journal.get('reads_skipped', 0)} "
            f"committed reads, truncated "
            f"{journal.get('truncated_bytes', 0)} torn bytes"
        )
    lines.append(
        "  completed"
        if journal.get("completed")
        else "  NOT completed (interrupted — resume with `manymap resume`)"
    )
    return lines


def _histogram_table(histograms: Dict[str, Dict]) -> List[str]:
    """p50/p90/p99 table from a manifest's ``histograms`` object."""
    if not histograms:
        return []
    width = max(len(k) for k in histograms)
    header = (
        f"{'':<{width}}  {'count':>8}  {'mean':>10}  {'p50':>10}  "
        f"{'p90':>10}  {'p99':>10}  {'max':>10}"
    )
    lines = [header]
    for name in sorted(histograms):
        h = histograms[name]
        if not h.get("count"):
            continue
        lines.append(
            f"{name:<{width}}  {h['count']:>8}  "
            f"{_fmt_value(name, float(h.get('mean', 0.0))):>10}  "
            f"{_fmt_value(name, float(h.get('p50', 0.0))):>10}  "
            f"{_fmt_value(name, float(h.get('p90', 0.0))):>10}  "
            f"{_fmt_value(name, float(h.get('p99', 0.0))):>10}  "
            f"{_fmt_value(name, float(h.get('max') or 0.0)):>10}"
        )
    return lines if len(lines) > 1 else []


def render_metrics(manifests: Sequence[Dict]) -> str:
    """Render one or more loaded manifests as a comparison report."""
    from ..core.profiling import PipelineProfile

    if not manifests:
        return "(no metrics files)"
    labels: List[str] = []
    profiles: Dict[str, "PipelineProfile"] = {}
    for i, metrics in enumerate(manifests):
        label = str(metrics.get("label") or f"run{i}")
        base, n = label, 1
        while label in profiles:  # same label twice: disambiguate
            n += 1
            label = f"{base}#{n}"
        labels.append(label)
        profiles[label] = profile_from_metrics(metrics)

    lines: List[str] = []
    if len(manifests) == 1:
        profile = profiles[labels[0]]
        profile.label = labels[0]
        lines.append(profile.render())
    else:
        lines.append(PipelineProfile.compare(profiles))
    lines.append("")
    for label, metrics in zip(labels, manifests):
        lines.append(_footer_line(label, metrics))
    if len(manifests) == 1:
        lines.append("")
        lines.append("Counters")
        lines.extend(_counter_table(manifests[0].get("counters", {})))
        batch_lines = _batch_lines(manifests[0])
        if batch_lines:
            lines.append("")
            lines.append("Batching")
            lines.extend(batch_lines)
        serve_lines = _serve_lines(manifests[0])
        if serve_lines:
            lines.append("")
            lines.append("Serving")
            lines.extend(serve_lines)
        journal_lines = _journal_lines(manifests[0])
        if journal_lines:
            lines.append("")
            lines.append("Durability")
            lines.extend(journal_lines)
        hist_lines = _histogram_table(manifests[0].get("histograms") or {})
        if hist_lines:
            lines.append("")
            lines.append("Histograms")
            lines.extend(hist_lines)
        gauges = manifests[0].get("gauges") or {}
        if gauges:
            width = max(len(k) for k in gauges)
            lines.append("")
            lines.append("Gauges")
            lines.extend(
                f"{name:<{width}}  {gauges[name]:>14.4f}"
                if isinstance(gauges[name], float)
                else f"{name:<{width}}  {gauges[name]:>14}"
                for name in sorted(gauges)
            )
        events = manifests[0].get("events") or {}
        if events:
            width = max(len(k) for k in events)
            lines.append("")
            lines.append(f"Events ({sum(events.values())})")
            lines.extend(
                f"{name:<{width}}  {events[name]:>14}"
                for name in sorted(events)
            )
        faults = manifests[0].get("faults") or {}
        if faults.get("n_faults"):
            lines.append("")
            lines.append(f"Faults ({faults['n_faults']})")
            for f in list(faults.get("quarantined", [])) + list(
                faults.get("fallbacks", [])
            ):
                lines.append(
                    f"  {f.get('read', '?')}: {f.get('kind', '?')} -> "
                    f"{f.get('action', '?')} after "
                    f"{f.get('attempts', '?')} attempt(s): "
                    f"{f.get('reason', '')}"
                )
    return "\n".join(lines)


def _render_markdown(manifests: Sequence[Dict]) -> str:
    """Markdown tables for docs: stage seconds + derived throughput."""
    if not manifests:
        return "(no metrics files)"
    labels = [
        str(m.get("label") or f"run{i}") for i, m in enumerate(manifests)
    ]
    stages: List[str] = []
    for m in manifests:
        for s in m.get("stages", {}):
            if s not in stages:
                stages.append(s)
    lines = ["| Stage | " + " | ".join(labels) + " |"]
    lines.append("|---" * (len(labels) + 1) + "|")
    for stage in stages:
        row = [stage]
        for m in manifests:
            row.append(f"{float(m.get('stages', {}).get(stage, 0.0)):.4f}s")
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    lines.append("| Metric | " + " | ".join(labels) + " |")
    lines.append("|---" * (len(labels) + 1) + "|")
    rows = (
        ("GCUPS", "gcups", "{:.4f}"),
        ("reads/s", "reads_per_sec", "{:.2f}"),
        ("bases/s", "bases_per_sec", "{:.0f}"),
        ("DP cells", "dp_cells", "{:d}"),
    )
    for title, key, fmt in rows:
        row = [title]
        for m in manifests:
            v = m.get("derived", {}).get(key, 0)
            row.append(fmt.format(int(v) if fmt == "{:d}" else float(v)))
        lines.append("| " + " | ".join(row) + " |")
    hist = (manifests[0].get("histograms") or {}) if len(manifests) == 1 else {}
    named = {k: v for k, v in hist.items() if v.get("count")}
    if named:
        lines.append("")
        lines.append("| Histogram | count | mean | p50 | p90 | p99 | max |")
        lines.append("|---|---|---|---|---|---|---|")
        for name in sorted(named):
            h = named[name]
            lines.append(
                "| "
                + " | ".join(
                    [
                        name,
                        str(h["count"]),
                        _fmt_value(name, float(h.get("mean", 0.0))),
                        _fmt_value(name, float(h.get("p50", 0.0))),
                        _fmt_value(name, float(h.get("p90", 0.0))),
                        _fmt_value(name, float(h.get("p99", 0.0))),
                        _fmt_value(name, float(h.get("max") or 0.0)),
                    ]
                )
                + " |"
            )
    return "\n".join(lines)


def render_metrics_files(paths: Sequence[str], fmt: str = "table") -> str:
    """Load manifests from ``paths`` and render them in ``fmt``."""
    from .metrics import load_metrics

    if fmt not in REPORT_FORMATS:
        raise ValueError(
            f"unknown report format {fmt!r}; expected one of {REPORT_FORMATS}"
        )
    manifests = []
    for path in paths:
        metrics = load_metrics(path)
        metrics.setdefault("label", path)
        manifests.append(metrics)
    if fmt == "json":
        return json.dumps(
            manifests[0] if len(manifests) == 1 else manifests,
            indent=2,
            sort_keys=True,
        )
    if fmt == "markdown":
        return _render_markdown(manifests)
    return render_metrics(manifests)


# -- comparison / regression gate -------------------------------------- #


def compare_metrics(
    baseline: Dict, candidate: Dict, tolerance_pct: float = 10.0
) -> Dict:
    """Diff two manifests' throughput metrics against a tolerance.

    Each gated metric (:data:`GATED_METRICS`) yields a row with the
    baseline/candidate values and the relative change; a candidate more
    than ``tolerance_pct`` percent *worse* than baseline is a
    regression. A gated metric that is zero in the baseline (e.g. a
    zero-align-seconds micro run) cannot regress — there is nothing to
    gate against. Peak RSS is included informationally, never gated.

    Returns ``{"tolerance_pct", "rows": [...], "regressions": [...],
    "ok": bool}``.
    """
    rows: List[Dict] = []
    regressions: List[str] = []

    def add_row(
        name: str,
        base: float,
        cand: float,
        higher_better: Optional[bool],
    ) -> None:
        change = (cand - base) / base * 100.0 if base else None
        regressed = False
        if higher_better is not None and change is not None:
            worse = -change if higher_better else change
            regressed = worse > tolerance_pct
        rows.append(
            {
                "metric": name,
                "baseline": base,
                "candidate": cand,
                "change_pct": change,
                "gated": higher_better is not None,
                "regressed": regressed,
            }
        )
        if regressed:
            regressions.append(name)

    b_derived = baseline.get("derived", {})
    c_derived = candidate.get("derived", {})
    for key, higher_better in GATED_METRICS:
        add_row(
            key,
            float(b_derived.get(key, 0.0)),
            float(c_derived.get(key, 0.0)),
            higher_better,
        )
    add_row(
        "peak_rss_bytes",
        float(baseline.get("peak_rss_bytes", 0)),
        float(candidate.get("peak_rss_bytes", 0)),
        None,
    )
    return {
        "tolerance_pct": float(tolerance_pct),
        "baseline_label": str(baseline.get("label", "baseline")),
        "candidate_label": str(candidate.get("label", "candidate")),
        "baseline_run_id": str(baseline.get("run_id", "")),
        "candidate_run_id": str(candidate.get("run_id", "")),
        "rows": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


def render_compare(cmp: Dict, fmt: str = "table") -> str:
    """Render a :func:`compare_metrics` result in ``fmt``."""
    if fmt not in REPORT_FORMATS:
        raise ValueError(
            f"unknown report format {fmt!r}; expected one of {REPORT_FORMATS}"
        )
    if fmt == "json":
        return json.dumps(cmp, indent=2, sort_keys=True)
    rows = cmp["rows"]
    header = (
        f"comparing {cmp['candidate_label']} against "
        f"{cmp['baseline_label']} (tolerance {cmp['tolerance_pct']:.1f}%)"
    )
    if fmt == "markdown":
        lines = [
            header,
            "",
            "| Metric | Baseline | Candidate | Change | Status |",
            "|---|---|---|---|---|",
        ]
        for r in rows:
            change = (
                f"{r['change_pct']:+.1f}%"
                if r["change_pct"] is not None
                else "n/a"
            )
            status = (
                "REGRESSED"
                if r["regressed"]
                else ("ok" if r["gated"] else "info")
            )
            lines.append(
                f"| {r['metric']} | {r['baseline']:.4f} | "
                f"{r['candidate']:.4f} | {change} | {status} |"
            )
    else:
        width = max(len(r["metric"]) for r in rows)
        lines = [header, ""]
        for r in rows:
            change = (
                f"{r['change_pct']:+8.1f}%"
                if r["change_pct"] is not None
                else "     n/a "
            )
            status = (
                "REGRESSED"
                if r["regressed"]
                else ("ok" if r["gated"] else "info")
            )
            lines.append(
                f"{r['metric']:<{width}}  {r['baseline']:>14.4f}  "
                f"{r['candidate']:>14.4f}  {change}  {status}"
            )
    lines.append("")
    if cmp["ok"]:
        lines.append("PASS: no gated metric regressed beyond tolerance")
    else:
        lines.append(
            "FAIL: regression in " + ", ".join(cmp["regressions"])
        )
    return "\n".join(lines)


# -- perf trajectory ---------------------------------------------------- #


def render_trajectory(path: str, fmt: str = "table") -> str:
    """Render a ``BENCH_trajectory.jsonl`` perf-trajectory file.

    Each CI bench run appends one record
    (:func:`benchmarks._common.append_trajectory`): bench name, commit,
    timestamp, and headline numbers (reads/s, GCUPS, peak RSS). This
    renders the accumulated history per bench, oldest first, so the
    perf trend across PRs is one command away. Serving benches also
    carry ``rps``/``p99_ms``; those columns appear whenever at least
    one record has them (``-`` for records that do not).
    """
    import time as _time

    if fmt not in REPORT_FORMATS:
        raise ValueError(
            f"unknown report format {fmt!r}; expected one of {REPORT_FORMATS}"
        )
    records: List[Dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("record") == "bench":
                records.append(rec)
    if not records:
        return "(no trajectory records)"
    if fmt == "json":
        return json.dumps(records, indent=2, sort_keys=True)
    records.sort(key=lambda r: (r.get("bench", ""), r.get("created_unix", 0)))
    # Serving benches (bench_serve.py) append rps/p99_ms alongside the
    # mapping headline numbers; render those columns only when at
    # least one record carries them, so map-only trajectories keep
    # their familiar shape.
    has_serve = any(
        r.get("rps") is not None or r.get("p99_ms") is not None
        for r in records
    )

    def cells(rec: Dict) -> List[str]:
        ts = rec.get("created_unix")
        when = (
            _time.strftime("%Y-%m-%d %H:%M", _time.gmtime(ts))
            if ts
            else "?"
        )
        rss = rec.get("peak_rss_bytes")
        row = [
            str(rec.get("bench", "?")),
            when,
            str(rec.get("commit", ""))[:10] or "-",
            f"{float(rec.get('reads_per_s', 0.0)):.2f}",
            f"{float(rec.get('gcups', 0.0)):.4f}",
            human_bytes(int(rss)) if rss else "-",
        ]
        if has_serve:
            rps = rec.get("rps")
            p99 = rec.get("p99_ms")
            row.append(f"{float(rps):.1f}" if rps is not None else "-")
            row.append(f"{float(p99):.1f}" if p99 is not None else "-")
        return row

    header = ["bench", "when (UTC)", "commit", "reads/s", "GCUPS", "peak RSS"]
    if has_serve:
        header += ["rps", "p99 ms"]
    table = [cells(r) for r in records]
    if fmt == "markdown":
        lines = [
            "| " + " | ".join(header) + " |",
            "|---" * len(header) + "|",
        ]
        lines.extend("| " + " | ".join(row) + " |" for row in table)
        return "\n".join(lines)
    widths = [
        max(len(header[i]), max(len(row[i]) for row in table))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(f"{header[i]:<{widths[i]}}" for i in range(len(header)))
    ]
    lines.extend(
        "  ".join(f"{row[i]:<{widths[i]}}" for i in range(len(header)))
        for row in table
    )
    return "\n".join(lines)
