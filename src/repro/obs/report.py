"""Render metrics manifests as the paper's Table 2 / Figure 11 tables.

``manymap report run_a.json run_b.json`` loads one or more manifests
written by ``manymap map --metrics`` and prints the five-stage
seconds/percentage breakdown side by side (Table 2's CPU-vs-KNL
layout), followed by a throughput footer (reads mapped, DP cells,
GCUPS, peak RSS) and — for a single manifest — the counter table.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..utils.fmt import human_bytes, si

__all__ = ["profile_from_metrics", "render_metrics", "render_metrics_files"]


def profile_from_metrics(metrics: Dict):
    """Rebuild a :class:`PipelineProfile` from a manifest's stage dict."""
    from ..core.profiling import PipelineProfile

    profile = PipelineProfile(label=str(metrics.get("label", "")))
    for stage, seconds in metrics.get("stages", {}).items():
        profile.add(stage, float(seconds))
    return profile


def _footer_line(label: str, metrics: Dict) -> str:
    reads = metrics.get("reads", {})
    derived = metrics.get("derived", {})
    cells = derived.get("dp_cells", 0)
    parts = [
        f"{reads.get('n_mapped', 0)}/{reads.get('n_reads', 0)} reads mapped",
        f"{si(cells)} DP cells",
        f"{derived.get('gcups', 0.0):.4f} GCUPS",
        f"{derived.get('reads_per_sec', 0.0):.2f} reads/s",
        f"peak RSS {human_bytes(metrics.get('peak_rss_bytes', 0))}",
    ]
    return f"{label}: " + ", ".join(parts)


def _counter_table(counters: Dict[str, int]) -> List[str]:
    if not counters:
        return ["(no counters recorded)"]
    width = max(len(k) for k in counters)
    return [
        f"{name:<{width}}  {counters[name]:>14}"
        for name in sorted(counters)
    ]


def render_metrics(manifests: Sequence[Dict]) -> str:
    """Render one or more loaded manifests as a comparison report."""
    from ..core.profiling import PipelineProfile

    if not manifests:
        return "(no metrics files)"
    labels: List[str] = []
    profiles: Dict[str, "PipelineProfile"] = {}
    for i, metrics in enumerate(manifests):
        label = str(metrics.get("label") or f"run{i}")
        base, n = label, 1
        while label in profiles:  # same label twice: disambiguate
            n += 1
            label = f"{base}#{n}"
        labels.append(label)
        profiles[label] = profile_from_metrics(metrics)

    lines: List[str] = []
    if len(manifests) == 1:
        profile = profiles[labels[0]]
        profile.label = labels[0]
        lines.append(profile.render())
    else:
        lines.append(PipelineProfile.compare(profiles))
    lines.append("")
    for label, metrics in zip(labels, manifests):
        lines.append(_footer_line(label, metrics))
    if len(manifests) == 1:
        lines.append("")
        lines.append("Counters")
        lines.extend(_counter_table(manifests[0].get("counters", {})))
        gauges = manifests[0].get("gauges") or {}
        if gauges:
            width = max(len(k) for k in gauges)
            lines.append("")
            lines.append("Gauges")
            lines.extend(
                f"{name:<{width}}  {gauges[name]:>14.4f}"
                if isinstance(gauges[name], float)
                else f"{name:<{width}}  {gauges[name]:>14}"
                for name in sorted(gauges)
            )
        faults = manifests[0].get("faults") or {}
        if faults.get("n_faults"):
            lines.append("")
            lines.append(f"Faults ({faults['n_faults']})")
            for f in list(faults.get("quarantined", [])) + list(
                faults.get("fallbacks", [])
            ):
                lines.append(
                    f"  {f.get('read', '?')}: {f.get('kind', '?')} -> "
                    f"{f.get('action', '?')} after "
                    f"{f.get('attempts', '?')} attempt(s): "
                    f"{f.get('reason', '')}"
                )
    return "\n".join(lines)


def render_metrics_files(paths: Sequence[str]) -> str:
    """Load manifests from ``paths`` and render the comparison report."""
    from .metrics import load_metrics

    manifests = []
    for path in paths:
        metrics = load_metrics(path)
        metrics.setdefault("label", path)
        manifests.append(metrics)
    return render_metrics(manifests)
