"""Structured stderr logging with per-worker prefixes and run ids.

Replaces the CLI's ad-hoc ``print(..., file=sys.stderr)`` calls with a
``logging`` tree rooted at ``repro``. The format carries the process
name and the current run id (set from
:attr:`repro.obs.telemetry.Telemetry.run_id`), so interleaved
worker-process output stays attributable and joinable to the run's
metrics/trace/timeline artifacts:

.. code-block:: text

    12:30:01 I [SpawnPoolWorker-2] r:9f2c41ab repro.runtime: mapped chunk 7

Worker processes configure themselves in their pool initializer with
the level and run id shipped from the parent
(:func:`current_level_name` / :func:`current_run_id`).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = [
    "LOG_LEVELS",
    "setup_logging",
    "get_logger",
    "current_level_name",
    "set_run_id",
    "current_run_id",
]

#: Names accepted by the CLI's ``--log-level`` flag.
LOG_LEVELS = ("debug", "info", "warning", "error")

_FORMAT = (
    "%(asctime)s %(levelname).1s [%(processName)s] %(run_id)s "
    "%(name)s: %(message)s"
)
_DATEFMT = "%H:%M:%S"

#: The run id stamped into log records; "-" until a run begins.
_RUN_ID = "-"


def set_run_id(run_id: Optional[str]) -> None:
    """Stamp subsequent log records with ``run_id`` (shortened for the
    prefix; ``None`` resets to the idle marker)."""
    global _RUN_ID
    _RUN_ID = f"r:{run_id[:8]}" if run_id else "-"


def current_run_id() -> str:
    """The run-id prefix in effect (for shipping to worker processes)."""
    return _RUN_ID


class _RunIdFilter(logging.Filter):
    """Attach the current run id to every record passing the handler."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = _RUN_ID
        return True


def setup_logging(level: str = "info", stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent per process.

    Installs exactly one stderr handler on the root ``repro`` logger
    (re-invocations only adjust the level / stream), and disables
    propagation so host applications' root handlers don't double-print.
    """
    name = str(level).lower()
    if name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LOG_LEVELS}"
        )
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, name.upper()))
    ours = [h for h in logger.handlers if getattr(h, "_repro_handler", False)]
    if ours and stream is not None:
        for h in ours:
            h.setStream(stream)
    elif not ours:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        handler.addFilter(_RunIdFilter())
        handler._repro_handler = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child logger under the ``repro`` tree (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}")


def current_level_name(default: str = "warning") -> str:
    """The configured level as a ``--log-level`` name, for shipping to
    worker-process initializers."""
    level = logging.getLogger("repro").level
    for name in LOG_LEVELS:
        if level == getattr(logging, name.upper()):
            return name
    return default
