"""Point-in-time gauges: queue depths, stall seconds, high-water marks.

Counters (:mod:`repro.obs.counters`) count *work* — monotonically
increasing integers that must be identical across backends. Gauges
record *state of the execution machinery*: how deep the pipeline
queues got, how long each stage sat blocked, how large the reorder
buffer grew. They are expected to differ run to run (they describe
scheduling, not the workload), so they live in their own registry and
are reported in the ``--metrics`` manifest under a separate ``gauges``
key instead of being folded into the counter totals.

The streaming backend (:mod:`repro.runtime.streaming`) is the primary
writer: its reader / compute / writer stages record queue-depth
high-water marks and cumulative stall seconds, which is how
``map --metrics`` shows the paper's Fig. 11 overlap story (a stage
that never stalls is fully overlapped; a stage with large stall time
is the bottleneck's victim).
"""

from __future__ import annotations

import threading
from typing import Dict, Union

__all__ = ["GaugeSet"]

Number = Union[int, float]


class GaugeSet:
    """A small thread-safe map of named numeric gauges.

    Three write modes cover the pipeline's needs: :meth:`set` (last
    value wins), :meth:`add` (cumulative, e.g. stall seconds), and
    :meth:`high_water` (maximum ever observed, e.g. queue depth).
    """

    __slots__ = ("_lock", "_values")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, Number] = {}

    def set(self, name: str, value: Number) -> None:
        """Record the latest value for ``name``."""
        with self._lock:
            self._values[name] = value

    def add(self, name: str, value: Number) -> None:
        """Accumulate ``value`` into ``name`` (missing starts at 0)."""
        with self._lock:
            self._values[name] = self._values.get(name, 0) + value

    def high_water(self, name: str, value: Number) -> None:
        """Keep the maximum of the current and previous values."""
        with self._lock:
            prev = self._values.get(name)
            if prev is None or value > prev:
                self._values[name] = value

    def snapshot(self) -> Dict[str, Number]:
        """A point-in-time copy of every gauge."""
        with self._lock:
            return dict(self._values)

    def merge(self, other: Dict[str, Number]) -> None:
        """Fold another snapshot in (``add`` semantics per key)."""
        with self._lock:
            for k, v in other.items():
                self._values[k] = self._values.get(k, 0) + v

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)
