"""Machine-readable run manifests (``--metrics``) and GCUPS derivation.

One JSON document per ``map`` run: config, machine info, the paper's
five-stage seconds (plus any extra stages), counter totals, derived
throughput metrics, and peak RSS. The GCUPS derivation follows the
GPU-aligner literature (GASAL2, GenASM): *cell updates per second* over
the cells the banded kernels actually evaluate — the ``dp_cells``
counter sums band areas, not ``|Q| x |T|`` — divided by the Align stage
seconds. On parallel backends the Align stage records aggregate worker
seconds, so GCUPS stays a per-worker kernel rate rather than inflating
with the worker count.

The manifest layout is pinned by ``benchmarks/metrics_schema.json``
(validated in CI by :mod:`repro.obs.schema`); bump
:data:`SCHEMA_VERSION` when changing it.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import sys
import time
from typing import Dict, Optional

from .._version import __version__

__all__ = [
    "SCHEMA_VERSION",
    "machine_info",
    "derive_metrics",
    "batch_summary",
    "serve_summary",
    "journal_summary",
    "build_metrics",
    "write_metrics",
    "load_metrics",
]

#: Manifest layout version; see benchmarks/metrics_schema.json.
#: v2 adds the optional ``gauges`` object (queue depths / stall
#: seconds from the streaming backend); v3 adds the optional
#: ``faults`` object (quarantined reads / watchdog fallbacks from the
#: fault-tolerance layer); v4 adds ``run_id`` (joins this manifest to
#: the run's trace/timeline/sidecar artifacts) and ``histograms``
#: (per-stage latency / read-length / band-width distributions with
#: p50/p90/p99); v5 adds the optional ``batch`` object (cross-read
#: wavefront batching: lane occupancy, padding waste, zdrop-retired
#: lanes, dispatch batched-vs-fallback split); v6 adds the optional
#: ``export`` config block (live telemetry plane: status_port, events
#: path) and the ``events`` summary (per-kind structured event counts
#: from the run's event bus); v7 adds the optional ``serve`` object
#: (the ``repro serve`` front-end: request/shed/batch totals, batch
#: occupancy, queue-depth high water, per-tenant request counts);
#: v8 adds the optional ``journal`` object (durable runs: commit
#: count, resume/skip/truncation tallies, committed output bytes and
#: rolling CRC from the write-ahead journal); v9 adds the optional
#: ``tracing`` object (request-scoped tracing: traces started / kept /
#: dropped by the tail sampler, sampling config, trace-store dir) and
#: the ``events.dropped`` counter (ring evictions). v1-v8 manifests
#: remain valid.
SCHEMA_VERSION = 9


def machine_info() -> Dict:
    """Host facts a perf number is meaningless without."""
    return {
        "platform": _platform.platform(),
        "machine": _platform.machine(),
        "python": _platform.python_version(),
        "implementation": _platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
    }


def derive_metrics(
    stages: Dict[str, float],
    counters: Dict[str, int],
    n_reads: int = 0,
    total_bases: int = 0,
) -> Dict:
    """Throughput metrics computed from stage seconds + counters."""
    align_s = float(stages.get("Align", 0.0))
    total_s = float(sum(stages.values()))
    cells = int(counters.get("dp_cells", 0))
    band_calls = int(counters.get("band_calls", 0))
    return {
        "dp_cells": cells,
        "gcups": cells / align_s / 1e9 if align_s > 0 else 0.0,
        "reads_per_sec": n_reads / total_s if total_s > 0 else 0.0,
        "bases_per_sec": total_bases / total_s if total_s > 0 else 0.0,
        "mean_band_width": (
            counters.get("band_width_sum", 0) / band_calls
            if band_calls
            else 0.0
        ),
    }


def batch_summary(counters: Dict[str, int]) -> Dict:
    """Cross-read batching summary derived from wavefront/dispatch counters.

    Occupancy is recomputed here from the cell totals rather than taken
    from the per-call ``wavefront.occupancy`` counter (which sums
    per-call percentages and is only useful divided by call count).
    Returns an empty dict when no batched kernel ran, so per-pair runs
    carry an empty ``batch`` object and the report renderer skips the
    Batching section.
    """
    calls = int(counters.get("wavefront.calls", 0))
    jobs = int(counters.get("dispatch.jobs", 0))
    if not calls and not jobs:
        return {}
    active = int(counters.get("wavefront.cells_active", 0))
    padded = int(counters.get("wavefront.cells_padded", 0))
    return {
        "wavefront_calls": calls,
        "lanes": int(counters.get("wavefront.lanes", 0)),
        "lanes_retired": int(counters.get("wavefront.lanes_retired", 0)),
        "cells_active": active,
        "cells_padded": padded,
        "occupancy_pct": 100.0 * active / padded if padded else 0.0,
        "padding_waste_pct": (
            100.0 * (padded - active) / padded if padded else 0.0
        ),
        "dispatch_jobs": jobs,
        "batches": int(counters.get("dispatch.batches", 0)),
        "batched_jobs": int(counters.get("dispatch.batched_jobs", 0)),
        "fallback_jobs": int(counters.get("dispatch.fallback_jobs", 0)),
    }


def serve_summary(
    counters: Dict[str, int], gauges: Optional[Dict[str, float]] = None
) -> Dict:
    """Serving-plane summary derived from ``serve.*`` counters/gauges.

    Returns an empty dict when no serve front-end ran (no ``serve.*``
    counters), so one-shot manifests carry an empty ``serve`` object
    and the report renderer skips the Serving section. Batch occupancy
    here is *request coalescing* (mean reads and requests per executed
    batch), the serving-shape counterpart of the DP-lane occupancy in
    :func:`batch_summary`.
    """
    requests = int(counters.get("serve.requests", 0))
    batches = int(counters.get("serve.batches", 0))
    if not requests and not batches:
        return {}
    gauges = gauges or {}
    batch_reads = int(counters.get("serve.batch_reads", 0))
    batch_requests = int(counters.get("serve.batch_requests", 0))
    tenants = {
        name[len("serve.tenant.") : -len(".requests")]: int(count)
        for name, count in counters.items()
        if name.startswith("serve.tenant.") and name.endswith(".requests")
    }
    return {
        "requests": requests,
        "admitted": int(counters.get("serve.admitted", 0)),
        "ok": int(counters.get("serve.ok", 0)),
        "errors": int(counters.get("serve.errors", 0)),
        "shed": int(counters.get("serve.shed", 0)),
        "shed_queue": int(counters.get("serve.shed.queue", 0)),
        "shed_quota": int(counters.get("serve.shed.quota", 0)),
        "shed_draining": int(counters.get("serve.shed.draining", 0)),
        "replayed": int(counters.get("serve.replayed", 0)),
        "batches": batches,
        "coalesced_batches": int(counters.get("serve.coalesced", 0)),
        "batch_reads": batch_reads,
        "mean_reads_per_batch": batch_reads / batches if batches else 0.0,
        "mean_requests_per_batch": (
            batch_requests / batches if batches else 0.0
        ),
        "queue_depth_max": int(gauges.get("serve.queue.requests.max", 0)),
        "batch_target_reads": int(gauges.get("serve.batch.target_reads", 0)),
        "tenants": tenants,
    }


def journal_summary(journal: Optional[Dict]) -> Dict:
    """The manifest's ``journal`` object (schema v8).

    ``journal`` is :meth:`repro.runtime.journal.RunJournal.summary`
    (``StreamStats.journal``) or ``None``; non-durable runs carry an
    empty ``journal`` object and the report renderer skips the
    Durability section.
    """
    return dict(journal or {})


def build_metrics(
    profile,
    telemetry,
    config: Optional[Dict] = None,
    reads: Optional[Dict] = None,
    label: str = "",
    export: Optional[Dict] = None,
    journal: Optional[Dict] = None,
    tracing: Optional[Dict] = None,
) -> Dict:
    """Assemble the full run manifest.

    ``profile`` is a :class:`~repro.core.profiling.PipelineProfile`;
    ``telemetry`` a :class:`~repro.obs.telemetry.Telemetry` whose
    run-scoped counter delta is recorded. ``reads`` may carry
    ``n_reads`` / ``total_bases`` / ``n_mapped``; ``export`` the live
    telemetry plane's config (``status_port`` / ``events_path``);
    ``journal`` the durable run's journal summary
    (``StreamStats.journal``); ``tracing`` the trace store's
    :meth:`~repro.obs.tracing.TraceStore.summary` (schema v9).
    """
    from ..eval.resources import peak_rss_bytes

    counters = telemetry.counters()
    stages = {k: float(v) for k, v in profile.timer.stages.items()}
    read_info = {"n_reads": 0, "total_bases": 0, "n_mapped": 0}
    read_info.update(reads or {})
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "manymap",
        "version": __version__,
        "created_unix": time.time(),
        "run_id": getattr(telemetry, "run_id", ""),
        "label": label or profile.label or "run",
        "argv": list(sys.argv),
        "config": dict(config or {}),
        "machine": machine_info(),
        "reads": read_info,
        "stages": stages,
        "counters": counters,
        "gauges": telemetry.gauges.snapshot(),
        "batch": batch_summary(counters),
        "serve": serve_summary(counters, telemetry.gauges.snapshot()),
        "journal": journal_summary(journal),
        "tracing": dict(tracing or {}),
        "faults": telemetry.fault_summary(),
        "histograms": telemetry.histograms(),
        "export": dict(export or {}),
        "events": (
            telemetry.events_summary()
            if hasattr(telemetry, "events_summary")
            else {}
        ),
        "derived": derive_metrics(
            stages,
            counters,
            n_reads=int(read_info.get("n_reads", 0)),
            total_bases=int(read_info.get("total_bases", 0)),
        ),
        "peak_rss_bytes": peak_rss_bytes(),
        "n_trace_spans": getattr(
            telemetry, "span_count", len(telemetry.spans)
        ),
    }


def write_metrics(path: str, metrics: Dict) -> None:
    # Atomic: a crash mid-dump must not leave a torn manifest that a
    # report/compare gate would half-parse.
    from ..utils.fsio import atomic_write

    atomic_write(
        path, json.dumps(metrics, indent=2, sort_keys=True) + "\n"
    )


def load_metrics(path: str) -> Dict:
    with open(path) as fh:
        return json.load(fh)
