"""Table 5: comparison of long read aligners.

All seven tools run on the same repeat-rich simulated PacBio dataset
(repeats are what separate the accuracy of the cruder heuristics).
Reproduction targets from the paper's table:

* manymap's error rate EQUALS minimap2's (identical alignments);
* manymap/minimap2 are the most accurate; Kart is the least accurate;
  the vote/fragment heuristics (minialign, Kart) and the short-read
  tool (BWA-MEM) all err more than manymap;
* BLASR's no-subsampling index is the largest (paper: 11.8 GB vs
  minimap2's 5.4 GB);
* DP work (cells) ranks the heavy tools: BLASR / NGMLR / BWA-MEM do
  orders of magnitude more base-level work than the anchored gap-fill
  of manymap — the driver of their long runtimes in the paper.
"""

import time

import pytest

from _common import emit
from repro.baselines import BASELINES, make_baseline
from repro.eval.accuracy import evaluate_accuracy
from repro.eval.report import render_table
from repro.eval.resources import measure_ram
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator
from repro.utils.fmt import human_bytes

PAPER_ERROR = {  # Table 5, Error Rate (%)
    "manymap": 0.378, "minimap2": 0.378, "minialign": 0.973, "Kart": 4.1,
    "BLASR": 0.559, "NGMLR": 0.808, "BWA-MEM": 1.158,
}


@pytest.fixture(scope="module")
def table5_data():
    genome = generate_genome(
        GenomeSpec(length=200_000, chromosomes=2, repeat_fraction=0.45,
                   repeat_length=1500, repeat_divergence=0.004,
                   repeat_families=2),
        seed=101,
    )
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(mean=1000.0, sigma=0.35, max_length=2500)
    reads = sim.simulate(40, seed=102)
    return genome, reads


def run_all(genome, reads):
    out = {}
    for name in BASELINES:
        tool = make_baseline(name)
        # RAM is tracked around the build only: tracemalloc slows NumPy
        # mapping by >10x, and the build holds the dominant allocations.
        with measure_ram() as ram:
            t0 = time.perf_counter()
            tool.build(genome)
            t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        results = tool.map_all(reads)
        t_map = time.perf_counter() - t0
        report = evaluate_accuracy(list(reads), results)
        out[name] = dict(
            report=report,
            index=tool.resources.index_bytes,
            cells=getattr(tool, "work_cells", 0),
            t_build=t_build,
            t_map=t_map,
            ram=ram["peak"],
        )
    return out


def test_table5_aligners(benchmark, table5_data):
    genome, reads = table5_data
    data = benchmark.pedantic(run_all, args=(genome, reads), rounds=1, iterations=1)
    rows = []
    for name, d in data.items():
        r = d["report"]
        rows.append([
            name,
            f"{100 * r.error_rate:.2f}%",
            f"{PAPER_ERROR[name]:.2f}%",
            f"{100 * r.sensitivity:.0f}%",
            human_bytes(d["index"]),
            f"{d['cells']:,}",
            f"{d['t_map']:.2f}s",
            human_bytes(d["ram"]),
        ])
    text = render_table(
        ["tool", "error", "paper err", "sens", "index", "DP cells", "map wall", "peak RAM"],
        rows, title="Table 5: long-read aligner comparison (scaled dataset)",
    )
    emit("table5_aligners", text)

    err = {n: d["report"].error_rate for n, d in data.items()}
    # manymap produces the same alignments as minimap2 -> same error rate.
    assert err["manymap"] == err["minimap2"]
    # manymap/minimap2 the most accurate of all tools.
    assert all(err["manymap"] <= e for e in err.values())
    # Kart the least accurate (fragment voting, no DP).
    assert err["Kart"] == max(err.values())
    # BLASR the most accurate of the baselines (full-DP refinement).
    others = ("minialign", "Kart", "NGMLR", "BWA-MEM")
    assert all(err["BLASR"] <= err[t] for t in others)
    # Every baseline errs strictly more than manymap.
    for tool in ("minialign", "Kart", "NGMLR", "BWA-MEM"):
        assert err[tool] > err["manymap"]
    # BLASR's dense index is the biggest (paper: ~2.2x minimap2's).
    assert data["BLASR"]["index"] > 1.5 * data["manymap"]["index"]
    # DP-work ordering that drives the paper's runtime ordering.
    assert data["BLASR"]["cells"] > 5 * data["manymap"]["cells"]
    assert data["NGMLR"]["cells"] > data["manymap"]["cells"]
    assert data["BWA-MEM"]["cells"] > data["NGMLR"]["cells"]
    # The vote-based tools do almost no DP (their speed in the paper).
    assert data["minialign"]["cells"] < 0.1 * data["manymap"]["cells"]
    assert data["Kart"]["cells"] < 0.1 * data["manymap"]["cells"]
