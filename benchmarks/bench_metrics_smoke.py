"""Metrics smoke benchmark: emit a run manifest and validate it.

Drives :class:`~repro.core.driver.ParallelDriver` over a small simulated
read set, collects the ``--metrics`` manifest, and checks it against the
checked-in JSON schema (``benchmarks/metrics_schema.json``) using the
stdlib-only subset validator in :mod:`repro.obs.schema` — no external
dependencies. The manifest must carry a nonzero DP-cell count and a
positive GCUPS figure, and the counter totals must be identical between
the serial and process backends (telemetry is backend-independent).

Run standalone (CI smoke mode stays well under a minute):

    PYTHONPATH=src python benchmarks/bench_metrics_smoke.py --smoke

or via pytest (``pytest benchmarks/bench_metrics_smoke.py``). Emits
``benchmarks/results/BENCH_metrics_smoke.json`` (the manifest itself)
plus the usual ``.txt`` report table.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from _common import RESULTS_DIR, emit

from repro.core.aligner import Aligner
from repro.core.driver import ParallelDriver
from repro.obs.report import render_metrics
from repro.obs.schema import validate
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

JSON_NAME = "BENCH_metrics_smoke.json"
SCHEMA_PATH = Path(__file__).parent / "metrics_schema.json"


def _workload(smoke: bool):
    genome = generate_genome(
        GenomeSpec(length=40_000 if smoke else 120_000, chromosomes=1),
        seed=23,
    )
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(
        mean=800.0 if smoke else 1500.0, sigma=0.4, max_length=4000
    )
    reads = sim.simulate(16 if smoke else 48, seed=29)
    return genome, list(reads)


def run_metrics_smoke(smoke: bool = True, out_dir: Path = RESULTS_DIR) -> Dict:
    """Produce + validate manifests for the serial and process backends."""
    genome, reads = _workload(smoke)
    schema = json.loads(SCHEMA_PATH.read_text())

    manifests: Dict[str, Dict] = {}
    for backend, workers in (("serial", 1), ("processes", 2)):
        driver = ParallelDriver(
            Aligner(genome, preset="test"),
            backend=backend,
            workers=workers,
            chunk_reads=4,
        )
        driver.run(reads)
        manifests[backend] = driver.metrics()

    errors: List[str] = []
    for backend, manifest in manifests.items():
        for err in validate(manifest, schema):
            errors.append(f"{backend}: {err}")

    serial, procs = manifests["serial"], manifests["processes"]
    counters_match = serial["counters"] == procs["counters"]
    result = {
        "benchmark": "metrics_smoke",
        "smoke": smoke,
        "schema_errors": errors,
        "counters_match_across_backends": counters_match,
        "manifest": serial,
        "manifest_processes": procs,
    }

    report = render_metrics(list(manifests.values()))
    report += (
        f"\n\nschema violations: {len(errors)}"
        f"\ncounters identical serial vs processes[2]: {counters_match}"
    )
    emit("BENCH_metrics_smoke", report)
    out_dir.mkdir(exist_ok=True)
    (out_dir / JSON_NAME).write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_metrics_smoke():
    """CI smoke: schema-valid manifest, nonzero DP work, matching counters."""
    res = run_metrics_smoke(smoke=True)
    assert res["schema_errors"] == [], res["schema_errors"]
    assert res["counters_match_across_backends"], (
        "counter totals diverged between the serial and process backends"
    )
    m = res["manifest"]
    assert m["derived"]["dp_cells"] > 0, "no DP cells counted"
    assert m["derived"]["gcups"] > 0.0, "GCUPS not derived"
    assert m["reads"]["n_mapped"] > 0, "smoke workload mapped nothing"
    assert (RESULTS_DIR / JSON_NAME).exists()


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fast workload")
    args = ap.parse_args(argv)
    res = run_metrics_smoke(smoke=args.smoke)
    if res["schema_errors"]:
        for err in res["schema_errors"]:
            print(f"ERROR: schema violation: {err}", file=sys.stderr)
        return 1
    if not res["counters_match_across_backends"]:
        print(
            "ERROR: counter totals diverged between serial and process "
            "backends",
            file=sys.stderr,
        )
        return 1
    if res["manifest"]["derived"]["dp_cells"] <= 0:
        print("ERROR: manifest reports zero DP cells", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
