"""Metrics smoke benchmark: emit a run manifest and validate it.

Drives :class:`~repro.core.driver.ParallelDriver` over a small simulated
read set, collects the ``--metrics`` manifest, and checks it against the
checked-in JSON schema (``benchmarks/metrics_schema.json``) using the
stdlib-only subset validator in :mod:`repro.obs.schema` — no external
dependencies. The manifest must carry a nonzero DP-cell count and a
positive GCUPS figure, and the counter totals must be identical between
the serial and process backends (telemetry is backend-independent,
modulo the grouping-dependent ``wavefront.*``/``dispatch.*`` batching
telemetry, which is excluded).

The manifest must also carry the schema-v4 latency histograms, and the
histogram hot path must stay cheap. The gate multiplies the measured
per-``observe`` cost (microbenchmarked on the real
:data:`~repro.obs.hist.HISTOGRAMS` registry) by the run's actual
observation count and requires the product to stay under 2% of the
run's wall clock — observations happen at call granularity (per read /
per kernel call, never per cell), so this is ~0.01% in practice. An
enabled-vs-disabled wall-clock A/B is also recorded, but as
information only: on a multi-second workload 2% is tens of
milliseconds, well inside scheduler noise, so a wall gate would flake.

Run standalone (CI smoke mode stays well under a minute):

    PYTHONPATH=src python benchmarks/bench_metrics_smoke.py --smoke

or via pytest (``pytest benchmarks/bench_metrics_smoke.py``). Emits
``benchmarks/results/BENCH_metrics_smoke.json`` (the manifest itself)
plus the usual ``.txt`` report table.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from _common import RESULTS_DIR, append_trajectory, emit, ratio, write_json

from repro import api
from repro.core.aligner import Aligner
from repro.core.driver import ParallelDriver
from repro.obs.counters import drop_shape_dependent
from repro.obs.hist import HISTOGRAMS
from repro.obs.report import render_metrics
from repro.obs.schema import validate
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

JSON_NAME = "BENCH_metrics_smoke.json"
SCHEMA_PATH = Path(__file__).parent / "metrics_schema.json"

#: gate: measured observe cost x observe count <= 2% of run wall clock.
MAX_HIST_OVERHEAD_PCT = 2.0

#: status-server gate (PR 4/5 convention): server-on wall must stay
#: within 2% of server-off — OR within an absolute slack that absorbs
#: scheduler noise on sub-second smoke runs, where 2% is milliseconds.
MAX_STATUS_RATIO = 1.02
STATUS_ABS_SLACK_S = 0.05

#: tracing gate (same convention): tracing-on wall must stay within 2%
#: of tracing-off — OR within the same absolute scheduler-noise slack.
MAX_TRACING_RATIO = 1.02
TRACING_ABS_SLACK_S = 0.05


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def time_histogram_overhead(
    aligner, reads, manifest: Dict, repeats: int = 3
) -> Dict:
    """Histogram hot-path cost, gated deterministically.

    Gates on (per-observe microbenchmark) x (the run's actual observe
    count from the manifest) as a fraction of the run's wall seconds;
    records an enabled-vs-disabled A/B wall clock informationally.
    """
    n_obs = sum(
        int(h.get("count", 0))
        for h in manifest.get("histograms", {}).values()
    )
    n_calls = 100_000
    t0 = time.perf_counter()
    for _ in range(n_calls):
        HISTOGRAMS.observe("bench.overhead_probe", 123.0)
    per_observe_s = (time.perf_counter() - t0) / n_calls
    wall = float(manifest.get("wall_seconds", 0.0)) or sum(
        float(s) for s in manifest.get("stages", {}).values()
    )
    overhead_pct = (
        per_observe_s * n_obs / wall * 100.0 if wall else 0.0
    )
    within = overhead_pct <= MAX_HIST_OVERHEAD_PCT

    api.map_reads(aligner, reads)  # warm-up
    try:
        HISTOGRAMS.disable()
        t_off = _best_of(repeats, lambda: api.map_reads(aligner, reads))
    finally:
        HISTOGRAMS.enable()
    t_on = _best_of(repeats, lambda: api.map_reads(aligner, reads))
    return {
        "n_observes": n_obs,
        "per_observe_us": per_observe_s * 1e6,
        "run_wall_seconds": wall,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_HIST_OVERHEAD_PCT,
        "within_gate": within,
        # wall-clock A/B, informational only (scheduler noise >> 2%):
        "seconds_disabled": t_off,
        "seconds_enabled": t_on,
        "overhead_ratio": ratio(t_on, t_off),
    }


def time_status_overhead(aligner, reads, repeats: int = 3) -> Dict:
    """Status-server-on vs off wall clock over the same mapping run.

    The server only *samples* the registries when a request arrives, so
    mounting it must be free on the hot path; the run here is scraped
    once mid-setup (proving the endpoint answers) and the gate compares
    best-of-N wall seconds with the PR 4/5 ratio-or-absolute-slack
    convention.
    """
    import urllib.request

    from repro.obs.statusd import StatusServer

    api.map_reads(aligner, reads)  # warm-up
    t_off = _best_of(repeats, lambda: api.map_reads(aligner, reads))

    # One scrape against a mounted server to prove it answers...
    with StatusServer(port=0) as srv:
        with urllib.request.urlopen(srv.url + "/metrics", timeout=5) as r:
            assert r.status == 200
    # ...then the gated A/B with the server mounted for each run.
    t_on = _best_of(
        repeats, lambda: api.map_reads(aligner, reads, status_port=0)
    )
    within = (
        t_on <= t_off * MAX_STATUS_RATIO
        or t_on - t_off <= STATUS_ABS_SLACK_S
    )
    return {
        "seconds_off": t_off,
        "seconds_on": t_on,
        "overhead_ratio": ratio(t_on, t_off),
        "max_ratio": MAX_STATUS_RATIO,
        "abs_slack_s": STATUS_ABS_SLACK_S,
        "within_gate": within,
    }


def time_tracing_overhead(aligner, reads, repeats: int = 3) -> Dict:
    """Tracing-on vs off wall clock over the same mapping run.

    The tracer is strictly opt-in; when ``MapOptions.tracing`` is set,
    every chunk and kernel bucket opens a span and the store runs its
    tail-sampling decision per request. All of that happens at call
    granularity (never per DP cell), so full head-sampling must stay
    within the ratio-or-absolute-slack convention used by the status
    gate above.
    """
    from repro.obs.tracing import TraceConfig

    api.map_reads(aligner, reads)  # warm-up
    t_off = _best_of(repeats, lambda: api.map_reads(aligner, reads))
    cfg = TraceConfig(sample=1.0, slowest_pct=100.0)
    t_on = _best_of(
        repeats, lambda: api.map_reads(aligner, reads, tracing=cfg)
    )
    within = (
        t_on <= t_off * MAX_TRACING_RATIO
        or t_on - t_off <= TRACING_ABS_SLACK_S
    )
    return {
        "seconds_off": t_off,
        "seconds_on": t_on,
        "overhead_ratio": ratio(t_on, t_off),
        "max_ratio": MAX_TRACING_RATIO,
        "abs_slack_s": TRACING_ABS_SLACK_S,
        "within_gate": within,
    }


def _workload(smoke: bool):
    genome = generate_genome(
        GenomeSpec(length=40_000 if smoke else 120_000, chromosomes=1),
        seed=23,
    )
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(
        mean=800.0 if smoke else 1500.0, sigma=0.4, max_length=4000
    )
    reads = sim.simulate(16 if smoke else 48, seed=29)
    return genome, list(reads)


def run_metrics_smoke(smoke: bool = True, out_dir: Path = RESULTS_DIR) -> Dict:
    """Produce + validate manifests for the serial and process backends."""
    genome, reads = _workload(smoke)
    schema = json.loads(SCHEMA_PATH.read_text())

    manifests: Dict[str, Dict] = {}
    for backend, workers in (("serial", 1), ("processes", 2)):
        driver = ParallelDriver(
            Aligner(genome, preset="test"),
            backend=backend,
            workers=workers,
            chunk_reads=4,
        )
        driver.run(reads)
        manifests[backend] = driver.metrics()

    errors: List[str] = []
    for backend, manifest in manifests.items():
        for err in validate(manifest, schema):
            errors.append(f"{backend}: {err}")

    serial, procs = manifests["serial"], manifests["processes"]
    # wavefront.*/dispatch.* describe how DP jobs were pooled, which
    # legitimately varies with backend chunking; everything else must
    # be identical.
    counters_match = drop_shape_dependent(
        serial["counters"]
    ) == drop_shape_dependent(procs["counters"])
    hist_names = {
        name
        for name, h in serial.get("histograms", {}).items()
        if h.get("count")
    }
    hists_present = {
        "latency.seed_chain_s",
        "latency.align_s",
        "latency.read_s",
        "read.length",
    } <= hist_names
    overhead = time_histogram_overhead(
        Aligner(genome, preset="test"), reads, serial
    )
    status_overhead = time_status_overhead(
        Aligner(genome, preset="test"), reads
    )
    tracing_overhead = time_tracing_overhead(
        Aligner(genome, preset="test"), reads
    )
    result = {
        "benchmark": "metrics_smoke",
        "smoke": smoke,
        "schema_errors": errors,
        "counters_match_across_backends": counters_match,
        "histograms_present": hists_present,
        "histogram_overhead": overhead,
        "status_overhead": status_overhead,
        "tracing_overhead": tracing_overhead,
        "manifest": serial,
        "manifest_processes": procs,
    }

    report = render_metrics(list(manifests.values()))
    report += (
        f"\n\nschema violations: {len(errors)}"
        f"\ncounters identical serial vs processes[2]: {counters_match}"
        f"\nlatency/length histograms present: {hists_present}"
        f"\nhistogram overhead: {overhead['n_observes']} observes x "
        f"{overhead['per_observe_us']:.3f}us = "
        f"{overhead['overhead_pct']:.4f}% of "
        f"{overhead['run_wall_seconds']:.2f}s wall (gate <= "
        f"{MAX_HIST_OVERHEAD_PCT}%) -> "
        f"{'PASS' if overhead['within_gate'] else 'FAIL'}"
        f"\n  (informational A/B: {overhead['seconds_disabled']:.4f}s "
        f"off -> {overhead['seconds_enabled']:.4f}s on, "
        f"{overhead['overhead_ratio']:.3f}x)"
        f"\nstatus-server overhead: {status_overhead['seconds_off']:.4f}s "
        f"off -> {status_overhead['seconds_on']:.4f}s on "
        f"({status_overhead['overhead_ratio']:.3f}x; gate <= "
        f"{MAX_STATUS_RATIO}x or {STATUS_ABS_SLACK_S}s slack) -> "
        f"{'PASS' if status_overhead['within_gate'] else 'FAIL'}"
        f"\ntracing overhead: {tracing_overhead['seconds_off']:.4f}s "
        f"off -> {tracing_overhead['seconds_on']:.4f}s on "
        f"({tracing_overhead['overhead_ratio']:.3f}x; gate <= "
        f"{MAX_TRACING_RATIO}x or {TRACING_ABS_SLACK_S}s slack) -> "
        f"{'PASS' if tracing_overhead['within_gate'] else 'FAIL'}"
    )
    emit("BENCH_metrics_smoke", report)
    out_dir.mkdir(exist_ok=True)
    write_json(out_dir / JSON_NAME, result)
    append_trajectory(
        "metrics_smoke",
        reads_per_s=serial["derived"]["reads_per_sec"],
        gcups=serial["derived"]["gcups"],
        peak_rss_bytes=serial["peak_rss_bytes"],
    )
    return result


def test_metrics_smoke():
    """CI smoke: schema-valid manifest, nonzero DP work, matching counters."""
    res = run_metrics_smoke(smoke=True)
    assert res["schema_errors"] == [], res["schema_errors"]
    assert res["counters_match_across_backends"], (
        "counter totals diverged between the serial and process backends"
    )
    m = res["manifest"]
    assert m["derived"]["dp_cells"] > 0, "no DP cells counted"
    assert m["derived"]["gcups"] > 0.0, "GCUPS not derived"
    assert m["reads"]["n_mapped"] > 0, "smoke workload mapped nothing"
    assert res["histograms_present"], (
        "manifest is missing the per-stage latency / read-length "
        f"histograms: {sorted(m.get('histograms', {}))}"
    )
    ov = res["histogram_overhead"]
    assert ov["within_gate"], (
        f"histogram hot-path cost {ov['overhead_pct']:.4f}% "
        f"({ov['n_observes']} observes x {ov['per_observe_us']:.3f}us "
        f"over {ov['run_wall_seconds']:.2f}s) exceeds the "
        f"{MAX_HIST_OVERHEAD_PCT}% gate"
    )
    so = res["status_overhead"]
    assert so["within_gate"], (
        f"status server costs {so['overhead_ratio']:.3f}x "
        f"({so['seconds_off']:.4f}s -> {so['seconds_on']:.4f}s), over "
        f"the {MAX_STATUS_RATIO}x / {STATUS_ABS_SLACK_S}s gate"
    )
    to = res["tracing_overhead"]
    assert to["within_gate"], (
        f"tracing costs {to['overhead_ratio']:.3f}x "
        f"({to['seconds_off']:.4f}s -> {to['seconds_on']:.4f}s), over "
        f"the {MAX_TRACING_RATIO}x / {TRACING_ABS_SLACK_S}s gate"
    )
    assert (RESULTS_DIR / JSON_NAME).exists()


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fast workload")
    args = ap.parse_args(argv)
    res = run_metrics_smoke(smoke=args.smoke)
    if res["schema_errors"]:
        for err in res["schema_errors"]:
            print(f"ERROR: schema violation: {err}", file=sys.stderr)
        return 1
    if not res["counters_match_across_backends"]:
        print(
            "ERROR: counter totals diverged between serial and process "
            "backends",
            file=sys.stderr,
        )
        return 1
    if res["manifest"]["derived"]["dp_cells"] <= 0:
        print("ERROR: manifest reports zero DP cells", file=sys.stderr)
        return 1
    if not res["histograms_present"]:
        print("ERROR: manifest is missing latency histograms", file=sys.stderr)
        return 1
    if not res["histogram_overhead"]["within_gate"]:
        print(
            "ERROR: histogram overhead "
            f"{res['histogram_overhead']['overhead_pct']:.4f}% exceeds "
            f"{MAX_HIST_OVERHEAD_PCT}%",
            file=sys.stderr,
        )
        return 1
    if not res["status_overhead"]["within_gate"]:
        print(
            "ERROR: status-server overhead "
            f"{res['status_overhead']['overhead_ratio']:.3f}x exceeds "
            f"{MAX_STATUS_RATIO}x (+{STATUS_ABS_SLACK_S}s slack)",
            file=sys.stderr,
        )
        return 1
    if not res["tracing_overhead"]["within_gate"]:
        print(
            "ERROR: tracing overhead "
            f"{res['tracing_overhead']['overhead_ratio']:.3f}x exceeds "
            f"{MAX_TRACING_RATIO}x (+{TRACING_ABS_SLACK_S}s slack)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
