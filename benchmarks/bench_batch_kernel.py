"""Ablation: batched inter-sequence gap alignment vs per-pair kernels.

Our SWIPE-style batching (DESIGN.md extension; Rognes 2011 in the
paper's related work) amortizes per-diagonal dispatch overhead over all
the small inter-anchor segments of a read. Measured claim: batching the
typical gap-fill workload is several times faster than per-pair calls
at bit-identical results.
"""

import time

import numpy as np

from _common import emit, ratio
from repro.align.batch_kernel import align_batch
from repro.align.manymap_kernel import align_manymap
from repro.align.scoring import Scoring
from repro.eval.report import render_table
from repro.seq.alphabet import random_codes
from repro.seq.mutate import MutationSpec, mutate_codes

SC = Scoring()


def workload(n_segments=100, seed=0):
    """Typical gap-fill segments: 20-70 bp homologous pairs."""
    rng = np.random.default_rng(seed)
    ts, qs = [], []
    for i in range(n_segments):
        t = random_codes(int(rng.integers(20, 70)), rng)
        q, _ = mutate_codes(
            t, MutationSpec(sub_rate=0.08, ins_rate=0.05, del_rate=0.05), seed=i
        )
        ts.append(t)
        qs.append(q if q.size else random_codes(1, rng))
    return ts, qs


def test_batch_kernel_throughput(benchmark):
    ts, qs = workload()

    def batched():
        return align_batch(ts, qs, SC, path=True)

    def per_pair():
        return [
            align_manymap(t, q, SC, mode="global", path=True)
            for t, q in zip(ts, qs)
        ]

    batched()  # warm-up
    t0 = time.perf_counter()
    b_out = batched()
    t_batch = time.perf_counter() - t0
    t0 = time.perf_counter()
    s_out = per_pair()
    t_single = time.perf_counter() - t0
    benchmark.pedantic(batched, rounds=1, iterations=1)

    assert [r.score for r in b_out] == [r.score for r in s_out]
    speedup = ratio(t_single, t_batch)
    text = render_table(
        ["path", "wall (100 segments)", "speedup"],
        [
            ["per-pair manymap kernel", f"{t_single * 1e3:.1f} ms", "1.0x"],
            ["batched (SWIPE-style)", f"{t_batch * 1e3:.1f} ms", f"{speedup:.1f}x"],
        ],
        title="Ablation: inter-sequence batching of gap segments (measured)",
    )
    emit("ablation_batch_kernel", text)
    assert speedup > 2.0  # conservatively below the typical 4-5x
