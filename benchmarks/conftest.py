"""Workload fixtures shared by the benchmark harnesses.

Scale note (DESIGN.md §5): the paper aligns gigabases against hg38;
these benches default to a 150-300 kbp synthetic genome and tens of
reads so every table regenerates in CPython in minutes. The *shape*
claims (who wins, crossover positions) are scale-free.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import dp_pair
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator


@pytest.fixture(scope="session")
def bench_genome():
    """Repeat-rich reference so accuracy differences show (Table 5)."""
    return generate_genome(
        GenomeSpec(length=200_000, chromosomes=2, repeat_fraction=0.25,
                   repeat_length=600, repeat_divergence=0.01),
        seed=101,
    )


@pytest.fixture(scope="session")
def pacbio_reads(bench_genome):
    """The 'simulated dataset' analogue (PacBio CLR profile)."""
    sim = ReadSimulator.preset(bench_genome, "pacbio")
    sim.length_model = LengthModel(mean=1800.0, sigma=0.4, max_length=5000)
    return sim.simulate(30, seed=102)


@pytest.fixture(scope="session")
def nanopore_reads(bench_genome):
    """The 'real dataset' analogue (Nanopore profile, heavy tail).

    More reads than the PacBio set so the Pareto tail is actually
    sampled — the tail is the dataset's defining feature (Table 4).
    """
    sim = ReadSimulator.preset(bench_genome, "nanopore")
    sim.length_model = LengthModel(
        mean=1400.0, sigma=0.7, tail_weight=0.06, tail_alpha=1.1, max_length=40_000
    )
    return sim.simulate(150, seed=103)


@pytest.fixture(scope="session")
def kernel_pair_1k():
    return dp_pair(1000)


@pytest.fixture(scope="session")
def kernel_pair_2k():
    return dp_pair(2000)
