"""Figure 8: base-level alignment GCUPS on three processors vs length.

Reproduction targets (modeled):
* CPU: manymap 3.3-4.5x over original minimap2 (SSE2) at all lengths;
* KNL: up to ~3.4x at 8 kbp, declining for longer sequences (per-thread
  resources / MCDRAM capacity);
* GPU: peak at 4 kbp (~3.2x over the mm2 port), dropping once the DP
  state spills shared memory (score) or concurrency collapses (path);
* GPU is the fastest platform for mid-length kernels, CPU the most
  stable — feeding the paper's conclusion that the CPU still wins
  end-to-end.
"""

from _common import emit, ratio
from repro.eval.report import render_table
from repro.machine.cpu import XEON_GOLD_5115
from repro.machine.gpu import TESLA_V100
from repro.machine.isa import AVX512BW, SSE2
from repro.machine.knl import XEON_PHI_7210

LENGTHS = [1000, 2000, 4000, 8000, 16000, 32000]


def build(mode: str):
    cpu, knl, gpu = XEON_GOLD_5115, XEON_PHI_7210, TESLA_V100
    rows = []
    series = {}
    for L in LENGTHS:
        c_many = cpu.micro_gcups("manymap", AVX512BW, mode, L)
        c_mm2 = cpu.micro_gcups("mm2", SSE2, mode, L)
        k_many = knl.micro_gcups("manymap", mode, L)
        k_mm2 = knl.micro_gcups("mm2", mode, L)
        g_many = gpu.micro_gcups("manymap", mode, L)
        g_mm2 = gpu.micro_gcups("mm2", mode, L)
        series[L] = (c_many, c_mm2, k_many, k_mm2, g_many, g_mm2)
        rows.append([
            L, f"{c_mm2:.0f}", f"{c_many:.0f}", f"{ratio(c_many, c_mm2):.1f}x",
            f"{k_mm2:.0f}", f"{k_many:.0f}", f"{ratio(k_many, k_mm2):.1f}x",
            f"{g_mm2:.0f}", f"{g_many:.0f}", f"{ratio(g_many, g_mm2):.1f}x",
        ])
    return rows, series


def test_fig8a_score(benchmark):
    rows, series = benchmark.pedantic(build, args=("score",), rounds=1, iterations=1)
    text = render_table(
        ["len", "CPU mm2", "CPU many", "x", "KNL mm2", "KNL many", "x",
         "GPU mm2", "GPU many", "x"],
        rows, title="Figure 8a: score-only alignment GCUPS (modeled)",
    )
    emit("fig8a_processors_score", text)

    # CPU band 3.3-4.5x on all lengths.
    for L in LENGTHS:
        c_many, c_mm2, k_many, k_mm2, *_ = series[L]
        assert 3.0 <= c_many / c_mm2 <= 4.6
    # KNL peaks at <=8k then declines.
    k8 = series[8000][2]
    k32 = series[32000][2]
    assert k8 / series[8000][3] >= 3.0
    assert k32 < k8
    # GPU peak at 4k.
    assert series[4000][4] >= max(series[1000][4], series[16000][4])


def test_fig8b_path(benchmark):
    rows, series = benchmark.pedantic(build, args=("path",), rounds=1, iterations=1)
    text = render_table(
        ["len", "CPU mm2", "CPU many", "x", "KNL mm2", "KNL many", "x",
         "GPU mm2", "GPU many", "x"],
        rows, title="Figure 8b: alignment-with-path GCUPS (modeled)",
    )
    emit("fig8b_processors_path", text)

    # CPU band 1.3-4.5x (paper's stated range).
    for L in LENGTHS:
        c_many, c_mm2, *_ = series[L]
        assert 1.2 <= c_many / c_mm2 <= 4.6
    # KNL declines once the aggregate spills MCDRAM (8 kbp example).
    assert series[8000][2] < series[4000][2]
    # GPU: sharp concurrency collapse at 32 kbp (only 8 kernels fit).
    assert series[32000][4] < series[16000][4] < series[8000][4] * 1.5
    # GPU best-in-class somewhere in the 2-16 kbp band (paper's claim).
    mid = [2000, 4000, 8000, 16000]
    assert any(series[L][4] > series[L][0] and series[L][4] > series[L][2] for L in mid)
