"""Real threaded-pipeline overlap, measured (§4.4.4).

The paper's 3-thread pipeline hides I/O behind compute. Our
ThreadedPipeline is a real threads+queues executor; with an I/O-bound
load stage (file reads + sleeps stand in for disk latency) and a
NumPy-bound compute stage (releases the GIL), the measured makespan
lands near max(sum(load), sum(compute)) instead of their sum.
"""

import time

import numpy as np
import pytest

from _common import emit, ratio
from repro.eval.report import render_table
from repro.runtime.pipeline import PipelineStageCost, simulate_pipeline
from repro.runtime.threaded import ThreadedPipeline

N_BATCHES = 8
IO_S = 0.03  # per-batch simulated disk latency
COMPUTE_SIZE = 700  # matmul size tuned to ~30ms


def io_stage(i):
    time.sleep(IO_S)  # blocking I/O releases the GIL
    return np.random.default_rng(i).random((COMPUTE_SIZE, COMPUTE_SIZE))


def compute_stage(m):
    return float((m @ m).sum())  # BLAS releases the GIL


def test_real_pipeline_overlap(benchmark):
    # Serial reference: all stages back to back.
    t0 = time.perf_counter()
    for i in range(N_BATCHES):
        compute_stage(io_stage(i))
    t_serial = time.perf_counter() - t0

    out = []
    pipe = ThreadedPipeline(io_stage, compute_stage, out.append)

    def run():
        out.clear()
        t0 = time.perf_counter()
        pipe.run(range(N_BATCHES))
        return time.perf_counter() - t0

    t_pipe = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(out) == N_BATCHES

    # Discrete-event prediction from the measured per-stage costs.
    compute_each = (t_serial - N_BATCHES * IO_S) / N_BATCHES
    batches = [PipelineStageCost(IO_S, max(compute_each, 1e-4), 0.0)] * N_BATCHES
    t_model = simulate_pipeline(batches, threads=3)

    text = render_table(
        ["execution", "seconds", "vs serial"],
        [
            ["serial", f"{t_serial:.3f}", "1.00x"],
            ["3-thread pipeline (measured)", f"{t_pipe:.3f}",
             f"{ratio(t_serial, t_pipe):.2f}x"],
            ["3-thread pipeline (simulated)", f"{t_model:.3f}",
             f"{ratio(t_serial, t_model):.2f}x"],
        ],
        title="Pipeline overlap: real threads vs discrete-event model",
    )
    emit("pipeline_overlap", text)

    # Overlap must hide a meaningful share of the I/O.
    assert t_pipe < t_serial * 0.9
    # And the simulator predicts the measured makespan within 40%.
    assert abs(t_pipe - t_model) / t_model < 0.6
