"""Journaling overhead gate: durable runs must not tax the clean path.

The durability layer promises pay-for-use: a run without ``--run-dir``
is untouched (the chaos hook is one attribute check), and a *durable*
run that never crashes pays only the commit cadence — an fsync of the
output plus one fsynced journal record every ``commit_reads`` reads.
This bench times file-to-file mapping plain vs journaled (serial
backend, min-of-N wall clock) and gates the journaled/plain ratio at
<2% (or a small absolute floor for sub-millisecond noise on smoke
workloads). It also asserts the committed ``output.paf`` is
byte-identical to the plain run's output — durability must never
change the bytes.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_resume_overhead.py --smoke

or via pytest. Emits ``benchmarks/results/BENCH_resume_overhead.json``
and the usual ``.txt`` table.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from _common import RESULTS_DIR, append_trajectory, emit, ratio, write_json

from repro import api
from repro.api import MapOptions
from repro.core.aligner import Aligner
from repro.seq.fasta import write_fastq
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

JSON_NAME = "BENCH_resume_overhead.json"

#: relative gate: journaled clean run <= 2% over the plain run.
MAX_RATIO = 1.02
#: absolute slack for smoke-sized workloads where 2% is sub-millisecond.
ABS_SLACK_S = 0.05
#: durable-commit cadence under test (small enough that a smoke run
#: commits several times — we want to *pay* the fsyncs, not dodge them).
COMMIT_READS = 4


def _workload(smoke: bool, scratch: Path):
    genome = generate_genome(
        GenomeSpec(length=40_000 if smoke else 150_000, chromosomes=1),
        seed=31,
    )
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(
        mean=700.0 if smoke else 1500.0, sigma=0.4, max_length=3000
    )
    reads = list(sim.simulate(12 if smoke else 40, seed=37))
    reads_path = scratch / "reads.fq"
    write_fastq(str(reads_path), reads)
    return Aligner(genome, preset="test"), reads_path, len(reads)


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_resume_overhead(
    smoke: bool = True, repeats: int = 3, out_dir: Path = RESULTS_DIR
) -> Dict:
    """Time clean file-to-file mapping plain vs through the journal."""
    scratch = Path(tempfile.mkdtemp(prefix="bench_resume_"))
    try:
        aligner, reads_path, n_reads = _workload(smoke, scratch)
        plain_out = scratch / "plain.paf"
        run_dir = scratch / "run"

        def map_plain():
            with open(plain_out, "w") as out:
                api.map_file(aligner, reads_path, out, MapOptions())

        def map_journaled():
            # A fresh run dir each repeat: resuming a completed run
            # would skip the mapping we are trying to time.
            shutil.rmtree(run_dir, ignore_errors=True)
            api.map_file(
                aligner,
                reads_path,
                None,
                MapOptions(
                    run_dir=str(run_dir), commit_reads=COMMIT_READS
                ),
            )

        # Warm up caches/interpreter state once before timing.
        map_plain()

        t_plain = _best_of(repeats, map_plain)
        t_journal = _best_of(repeats, map_journaled)
        rel = ratio(t_journal, t_plain)
        within = (
            t_journal <= t_plain * MAX_RATIO
            or t_journal - t_plain <= ABS_SLACK_S
        )
        identical = (
            plain_out.read_bytes() == (run_dir / "output.paf").read_bytes()
        )
        commits = sum(
            1
            for line in (run_dir / "journal.jsonl").read_text().splitlines()
            if '"t":"commit"' in line
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    result = {
        "benchmark": "resume_overhead",
        "smoke": smoke,
        "repeats": repeats,
        "n_reads": n_reads,
        "commit_reads": COMMIT_READS,
        "commits": commits,
        "seconds_plain": t_plain,
        "seconds_journaled": t_journal,
        "overhead_ratio": rel,
        "max_ratio": MAX_RATIO,
        "abs_slack_s": ABS_SLACK_S,
        "within_gate": within,
        "paf_identical": identical,
    }

    table = [
        "Clean-path overhead of the write-ahead journal (serial "
        f"backend, best of {repeats})",
        "",
        f"{'mode':<32}{'seconds':>12}{'ratio':>10}",
        f"{'plain (no --run-dir)':<32}{t_plain:>12.4f}{1.0:>10.3f}",
        f"{'journaled (commit every ' + str(COMMIT_READS) + ')':<32}"
        f"{t_journal:>12.4f}{rel:>10.3f}",
        "",
        f"commits per run: {commits}",
        f"gate: ratio <= {MAX_RATIO} (or +{ABS_SLACK_S}s abs) -> "
        f"{'PASS' if within else 'FAIL'}",
        f"committed output identical to plain run: {identical}",
    ]
    emit("BENCH_resume_overhead", "\n".join(table))
    out_dir.mkdir(exist_ok=True)
    write_json(out_dir / JSON_NAME, result)
    append_trajectory(
        "resume_overhead",
        reads_per_s=n_reads / t_journal if t_journal else 0.0,
        overhead_ratio=rel,
        commits=commits,
    )
    return result


def test_resume_overhead():
    """CI gate: journaling costs <2% on the clean (uninterrupted) path."""
    res = run_resume_overhead(smoke=True)
    assert res["paf_identical"], "journaled run changed the output bytes"
    assert res["commits"] >= 2, "workload too small to exercise commits"
    assert res["within_gate"], (
        f"journaling overhead {res['overhead_ratio']:.3f}x exceeds "
        f"{MAX_RATIO}x gate "
        f"({res['seconds_plain']:.4f}s -> {res['seconds_journaled']:.4f}s)"
    )
    assert (RESULTS_DIR / JSON_NAME).exists()


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fast workload")
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)
    res = run_resume_overhead(smoke=args.smoke, repeats=args.repeats)
    if not res["paf_identical"]:
        print("ERROR: journaled run changed output bytes", file=sys.stderr)
        return 1
    if not res["within_gate"]:
        print(
            f"ERROR: overhead ratio {res['overhead_ratio']:.3f} exceeds "
            f"{MAX_RATIO}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
