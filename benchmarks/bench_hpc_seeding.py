"""Ablation: homopolymer-compressed seeding robustness (measured).

minimap2's map-pb preset seeds on homopolymer-compressed sequence
because PacBio CLR's dominant error is indels inside runs. Measured
claim: as run-length indel noise grows, plain minimizers lose anchors
much faster than HPC minimizers do.
"""

import numpy as np

from _common import emit, ratio
from repro.eval.report import render_table
from repro.index.minimizer import extract_minimizers
from repro.seq.alphabet import random_codes


def stretch_homopolymers(codes, rate, rng):
    """Duplicate a fraction of bases IN EXISTING RUNS (run-length noise)."""
    out = []
    i = 0
    n = codes.size
    while i < n:
        out.append(codes[i])
        if i + 1 < n and codes[i] == codes[i + 1] and rng.random() < rate:
            out.append(codes[i])  # extend the run by one
        i += 1
    return np.array(out, dtype=np.uint8)


def anchor_survival(rate, seed=0, length=30_000, k=11, w=6):
    rng = np.random.default_rng(seed)
    ref = random_codes(length, rng)
    noisy = stretch_homopolymers(ref, rate, rng)
    out = {}
    for hpc in (False, True):
        a = set(
            extract_minimizers(ref, k=k, w=w, as_arrays=True, hpc=hpc)[0].tolist()
        )
        b = set(
            extract_minimizers(noisy, k=k, w=w, as_arrays=True, hpc=hpc)[0].tolist()
        )
        out[hpc] = len(a & b) / max(1, len(a))
    return out


def test_hpc_seed_survival(benchmark):
    rates = [0.0, 0.05, 0.10, 0.20, 0.40]
    results = benchmark.pedantic(
        lambda: {r: anchor_survival(r) for r in rates}, rounds=1, iterations=1
    )
    rows = []
    for r in rates:
        plain = results[r][False]
        hpc = results[r][True]
        rows.append([
            f"{100 * r:.0f}%", f"{100 * plain:.1f}%", f"{100 * hpc:.1f}%",
            f"{ratio(hpc, max(plain, 1e-9)):.2f}x",
        ])
    text = render_table(
        ["run-indel rate", "plain seed survival", "HPC seed survival", "gain"],
        rows, title="Ablation: HPC seeding under homopolymer indels (measured)",
    )
    emit("ablation_hpc_seeding", text)

    # HPC seeds are EXACTLY invariant to run-length noise...
    for r in rates:
        assert results[r][True] == 1.0
    # ...while plain seeds decay monotonically with the noise rate.
    plain = [results[r][False] for r in rates]
    assert plain[0] == 1.0
    assert all(b <= a + 1e-9 for a, b in zip(plain, plain[1:]))
    assert plain[-1] < 0.5  # less than half the plain seeds survive at 40%
