"""Figure 11: overall performance breakdown, minimap2 vs manymap.

The measured CPU/mm2 stage profile (same run as Table 2) is projected
onto the other configurations:

* **CPU manymap** — the Align stage's DP fraction accelerates by the
  modeled AVX-512-vs-SSE2 kernel ratio; memory-mapped I/O halves index
  loading. Paper target: ~1.4x overall.
* **KNL minimap2** — per-stage single-thread slowdowns (Table 2 model).
* **KNL manymap** — the KNL kernel ratio on the DP fraction, mmap I/O,
  and the 3-thread pipeline hiding residual I/O. Paper target: ~2.3x
  overall vs KNL minimap2.
* **GPU manymap** — Align offloaded at the modeled GPU/CPU kernel ratio
  derated by occupancy; paper: "only outperforms the CPU version of
  manymap by a small margin".
"""

import io

import pytest

from _common import emit, ratio
from repro.core.platform import PlatformProjection
from repro.core.profiling import STAGES, PipelineProfile
from repro.eval.report import render_table


def _measured_cpu_profile(bench_genome, pacbio_reads, tmp_path):
    from repro.core.driver import BatchDriver
    from repro.index.index import build_index
    from repro.index.store import save_index

    idx = build_index(bench_genome, k=15, w=10)
    path = tmp_path / "ref.mmi"
    save_index(idx, path)
    driver = BatchDriver.from_index_file(
        bench_genome, path, load_mode="buffered", preset="map-pb", engine="mm2",
    )
    driver.run(driver.load_reads(pacbio_reads), output=io.StringIO())
    return driver.profile




def test_fig11_breakdown(benchmark, bench_genome, pacbio_reads, tmp_path):
    cpu_mm2 = benchmark.pedantic(
        _measured_cpu_profile, args=(bench_genome, pacbio_reads, tmp_path),
        rounds=1, iterations=1,
    )
    profiles = PlatformProjection().project(cpu_mm2)
    cpu_mm2 = profiles["CPU mm2"]
    cpu_many = profiles["CPU many"]
    knl_mm2 = profiles["KNL mm2"]
    knl_many = profiles["KNL many"]
    gpu_many = profiles["GPU many"]
    rows = []
    for stage in STAGES + ["Total"]:
        row = [stage]
        for p in profiles.values():
            v = p.total if stage == "Total" else p.seconds(stage)
            row.append(f"{v:.2f}")
        rows.append(row)
    sp_cpu = ratio(cpu_mm2.total, cpu_many.total)
    sp_knl = ratio(knl_mm2.total, knl_many.total)
    rows.append(["Speedup", "1.00", f"{sp_cpu:.2f}", "1.00", f"{sp_knl:.2f}", "-"])
    rows.append(["Paper", "1.00", "1.40", "1.00", "2.30", "-"])
    text = render_table(
        ["Stage"] + list(profiles), rows,
        title="Figure 11: overall breakdown (CPU measured, rest modeled; seconds)",
    )
    emit("fig11_breakdown", text)

    # Paper targets: ~1.4x on CPU, ~2.3x on KNL.
    assert 1.25 <= sp_cpu <= 1.75
    assert 1.8 <= sp_knl <= 2.6
    # GPU only marginally better than CPU manymap (occupancy limit).
    assert gpu_many.total < cpu_many.total
    assert gpu_many.total > 0.7 * cpu_many.total
    # Align remains the dominant stage everywhere.
    for p in profiles.values():
        assert p.seconds("Align") == max(p.seconds(s) for s in STAGES)
