"""Streaming pipeline benchmark: peak RSS flat in input size (§4.4.4).

The point of the streaming backend is that memory is bounded by the
queue capacities, not the input: ``api.map_file(backend="streaming")``
never materializes the read file. This bench measures child-process
peak RSS (``ru_maxrss``) mapping a reads file at 1x and ~10x size two
ways:

* **stream** — the overlapped read/compute/write pipeline;
* **slurp**  — the legacy whole-file path (``read_fasta`` then
  ``map_reads``, results materialized), the memory behavior the CLI
  had before every backend was routed through the shared bounded
  reader.

The reads are random (unmappable) sequences so parsing and I/O — the
memory story — dominate, and wall-clock stays CI-friendly. The gate:
growing the input ~10x must grow the slurp path's RSS by several times
more bytes than the stream path's, and the stream path's growth must
stay under a small absolute bound.

Run standalone (CI smoke mode stays well under a minute):

    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke

or via pytest (``pytest benchmarks/bench_streaming.py``). Emits
``benchmarks/results/BENCH_streaming.json`` plus the usual ``.txt``
table.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

from _common import RESULTS_DIR, emit, ratio, write_json

JSON_NAME = "BENCH_streaming.json"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Executed in a child so each (mode, size) gets a fresh peak-RSS
#: counter. Prints one JSON line: peak_rss_bytes + flow stats.
_CHILD = r"""
import json, resource, sys
mode, ref, reads_path = sys.argv[1], sys.argv[2], sys.argv[3]
from repro import api

aligner = api.open_index(ref, preset="test")
if mode == "stream":
    stats = api.map_file(
        aligner, reads_path, None,
        backend="streaming", workers=2,
        chunk_reads=8, window_reads=32, queue_chunks=4,
    )
    n_reads, n_mapped = stats.n_reads, stats.n_mapped
else:  # slurp: the legacy whole-file materialization
    from repro.seq.fasta import read_fasta
    reads = read_fasta(reads_path)
    results = api.map_reads(aligner, reads, backend="serial")
    n_reads = len(reads)
    n_mapped = sum(1 for alns in results if alns)
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
print(json.dumps(
    {"peak_rss_bytes": peak, "n_reads": n_reads, "n_mapped": n_mapped}
))
"""


def _write_inputs(out_dir: Path, smoke: bool) -> Dict[str, Path]:
    """A tiny reference plus 1x / ~10x random (unmappable) read files."""
    from repro.seq.alphabet import random_codes
    from repro.seq.fasta import write_fasta
    from repro.seq.genome import GenomeSpec, generate_genome
    from repro.seq.records import SeqRecord

    genome = generate_genome(
        GenomeSpec(length=40_000, chromosomes=1), seed=23
    )
    ref = out_dir / "_streaming_ref.fa"
    write_fasta(ref, genome.chromosomes)

    n_base = 100 if smoke else 400
    read_len = 10_000
    paths = {"ref": ref}
    for label, n_reads in (("base", n_base), ("big", n_base * 10)):
        path = out_dir / f"_streaming_reads_{label}.fa"
        with open(path, "w") as fh:
            for i in range(n_reads):
                rec = SeqRecord(
                    name=f"r{i}", codes=random_codes(read_len, seed=i)
                )
                fh.write(f">{rec.name}\n{rec.seq}\n")
        paths[label] = path
    return paths


def _measure(mode: str, ref: Path, reads: Path) -> Dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(ref), str(reads)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_streaming(smoke: bool = False, out_dir: Path = RESULTS_DIR) -> Dict:
    """Measure peak RSS at both sizes for both paths; return the dict."""
    out_dir.mkdir(exist_ok=True)
    paths = _write_inputs(out_dir, smoke)

    runs: Dict[str, Dict[str, Dict]] = {}
    try:
        for mode in ("stream", "slurp"):
            runs[mode] = {
                size: _measure(mode, paths["ref"], paths[size])
                for size in ("base", "big")
            }
    finally:
        for path in paths.values():
            try:
                os.unlink(path)
            except OSError:
                pass

    growth = {
        mode: runs[mode]["big"]["peak_rss_bytes"]
        - runs[mode]["base"]["peak_rss_bytes"]
        for mode in runs
    }
    result = {
        "benchmark": "streaming",
        "smoke": smoke,
        "read_counts": {
            size: runs["stream"][size]["n_reads"] for size in ("base", "big")
        },
        "peak_rss_bytes": {
            mode: {size: r["peak_rss_bytes"] for size, r in sizes.items()}
            for mode, sizes in runs.items()
        },
        "rss_growth_bytes": growth,
        "stream_growth_over_slurp": ratio(growth["stream"], growth["slurp"]),
    }

    mb = 1024 * 1024
    lines = [
        f"{'path':<8} {'reads 1x':>9} {'reads 10x':>9} "
        f"{'rss 1x':>10} {'rss 10x':>10} {'growth':>10}",
    ]
    for mode in ("stream", "slurp"):
        lines.append(
            f"{mode:<8} {runs[mode]['base']['n_reads']:>9} "
            f"{runs[mode]['big']['n_reads']:>9} "
            f"{runs[mode]['base']['peak_rss_bytes'] / mb:>9.1f}M "
            f"{runs[mode]['big']['peak_rss_bytes'] / mb:>9.1f}M "
            f"{growth[mode] / mb:>9.1f}M"
        )
    lines.append(
        f"\nstream growth / slurp growth: "
        f"{result['stream_growth_over_slurp']:.2f}"
        " (streaming memory is flat in input size)"
    )
    emit("BENCH_streaming", "\n".join(lines))
    write_json(out_dir / JSON_NAME, result)
    return result


def _check(result: Dict) -> List[str]:
    """Lenient-but-meaningful gates; RSS is noisy at small scale."""
    errors: List[str] = []
    growth = result["rss_growth_bytes"]
    mb = 1024 * 1024
    # The whole-file path must visibly pay for the 10x input; if the
    # workload is too small to register (<4 MiB), the comparison is
    # meaningless and we only check the absolute stream bound.
    if growth["slurp"] >= 4 * mb:
        if growth["stream"] > 0.5 * growth["slurp"]:
            errors.append(
                f"stream RSS growth {growth['stream'] / mb:.1f}M not clearly "
                f"below slurp growth {growth['slurp'] / mb:.1f}M"
            )
    if growth["stream"] > 24 * mb:
        errors.append(
            f"stream RSS grew {growth['stream'] / mb:.1f}M over a 10x "
            "input — pipeline memory is not bounded"
        )
    if result["read_counts"]["big"] != 10 * result["read_counts"]["base"]:
        errors.append("10x input did not contain 10x reads")
    return errors


def test_streaming_rss_flat():
    """CI smoke: streaming peak RSS must not scale with input size."""
    result = run_streaming(smoke=True)
    assert _check(result) == [], _check(result)
    assert (RESULTS_DIR / JSON_NAME).exists()


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fast workload")
    args = ap.parse_args(argv)
    result = run_streaming(smoke=args.smoke)
    errors = _check(result)
    for err in errors:
        print(f"ERROR: {err}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
