"""Cross-read wavefront kernel: GCUPS + batch occupancy vs per-pair DP.

Maps one simulated corpus twice on the serial backend — once through
the legacy per-pair path (``kernel=None``) and once through the
cross-read ``wavefront`` dispatch — and reports Align seconds, GCUPS,
reads/s, lane occupancy, padding waste, and the batched-vs-fallback
job split. PAF output must be byte-identical (the dispatch layer's
bit-identity contract); only wall-clock may differ.

The fresh wavefront manifest then gates against the committed
``benchmarks/results/BENCH_wavefront.json`` baseline with
:func:`repro.obs.report.compare_metrics` — the ``report --compare``
engine — so CI catches a GCUPS collapse in the batched kernel (exit 3,
matching the CLI). Tolerance follows ``MANYMAP_BENCH_TOLERANCE``
(default 60%: committed baselines come from different hardware, so
this is a collapse detector, not a microbenchmark).

Run standalone:

    PYTHONPATH=src python benchmarks/bench_wavefront.py --smoke

or via pytest. Emits ``BENCH_wavefront.json`` / ``.txt``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from _common import RESULTS_DIR, append_trajectory, emit, ratio, write_json

from repro.core.aligner import Aligner
from repro.core.alignment import to_paf
from repro.core.driver import ParallelDriver
from repro.eval.report import render_table
from repro.obs.report import compare_metrics, render_compare
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

JSON_NAME = "BENCH_wavefront.json"
BASELINE_PATH = RESULTS_DIR / JSON_NAME

#: Cross-machine collapse-detector tolerance, not a microbenchmark gate.
DEFAULT_TOLERANCE_PCT = float(os.environ.get("MANYMAP_BENCH_TOLERANCE", "60"))

#: The batched sweep must clearly beat per-pair dispatch even on the
#: smoke corpus; the observed serial multiple is far higher.
MIN_SPEEDUP = 1.5


def _workload(smoke: bool):
    length, n_reads = (40_000, 12) if smoke else (150_000, 48)
    genome = generate_genome(GenomeSpec(length=length, chromosomes=1), seed=33)
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(mean=1200.0, sigma=0.4, max_length=4000)
    return genome, list(sim.simulate(n_reads, seed=34))


def _map_with_kernel(genome, reads, kernel: Optional[str]) -> Tuple[Dict, List[str]]:
    """Serial run with one kernel selection -> (manifest, PAF lines)."""
    aligner = Aligner(genome, preset="test")
    aligner.set_kernel(kernel)
    driver = ParallelDriver(aligner, backend="serial")
    results = driver.run(reads)
    manifest = driver.metrics()
    manifest["label"] = kernel or "per-pair"
    paf = [to_paf(a) for alns in results for a in alns]
    return manifest, paf


def run_wavefront_bench(smoke: bool = False) -> Dict:
    genome, reads = _workload(smoke)
    base_manifest, base_paf = _map_with_kernel(genome, reads, None)
    wave_manifest, wave_paf = _map_with_kernel(genome, reads, "wavefront")
    if wave_paf != base_paf:
        raise AssertionError(
            "wavefront kernel changed PAF output vs the per-pair path"
        )

    batch = wave_manifest.get("batch") or {}
    rows = []
    for manifest in (base_manifest, wave_manifest):
        derived = manifest["derived"]
        b = manifest.get("batch") or {}
        rows.append(
            {
                "kernel": manifest["label"],
                "align_s": manifest["stages"].get("Align", 0.0),
                "gcups": derived["gcups"],
                "reads_per_sec": derived["reads_per_sec"],
                "occupancy_pct": b.get("occupancy_pct", 0.0),
                "padding_waste_pct": b.get("padding_waste_pct", 0.0),
                "batched_jobs": b.get("batched_jobs", 0),
                "fallback_jobs": b.get("fallback_jobs", 0),
                "lanes_retired": b.get("lanes_retired", 0),
            }
        )
    speedup = ratio(rows[0]["align_s"], rows[1]["align_s"])

    text = render_table(
        ["kernel", "Align (s)", "GCUPS", "reads/s", "occupancy",
         "batched/fallback jobs", "speedup"],
        [
            [
                r["kernel"],
                f"{r['align_s']:.3f}",
                f"{r['gcups']:.4f}",
                f"{r['reads_per_sec']:.2f}",
                f"{r['occupancy_pct']:.1f}%" if r["batched_jobs"] else "-",
                f"{r['batched_jobs']}/{r['fallback_jobs']}",
                f"{ratio(rows[0]['align_s'], r['align_s']):.2f}x",
            ]
            for r in rows
        ],
        title="Cross-read wavefront kernel vs per-pair DP "
        f"({'smoke' if smoke else 'full'} corpus, serial backend, "
        "identical PAF)",
    )
    return {
        "benchmark": "wavefront",
        "smoke": smoke,
        "n_reads": len(reads),
        "rows": rows,
        "align_speedup": speedup,
        "identical_paf": True,
        "manifest": wave_manifest,
        "text": text,
    }


def baseline_variant(baseline_path: Path, smoke: bool) -> bool:
    """Workload variant to run: whatever the committed baseline records.

    Mirrors ``bench_compare``: the fresh run replays the baseline's
    variant so the diff is always apples-to-apples; the ``--smoke``
    flag only applies when no baseline is committed yet.
    """
    if not baseline_path.exists():
        return smoke
    return bool(json.loads(baseline_path.read_text()).get("smoke", smoke))


def gate_against_baseline(
    result: Dict,
    baseline_path: Path = BASELINE_PATH,
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
) -> Optional[Dict]:
    """Diff the fresh wavefront manifest against the committed baseline.

    Returns the :func:`compare_metrics` result, or ``None`` when no
    comparable baseline is committed (first run, or a baseline recorded
    on the other workload variant).
    """
    if not baseline_path.exists():
        return None
    doc = json.loads(baseline_path.read_text())
    if doc.get("smoke") != result["smoke"]:
        return None
    baseline = doc["manifest"]
    baseline.setdefault("label", "baseline")
    return compare_metrics(
        baseline, result["manifest"], tolerance_pct=tolerance_pct
    )


def test_wavefront_speedup_and_identity():
    """CI gate: batched sweep beats per-pair DP at identical output."""
    result = run_wavefront_bench(smoke=baseline_variant(BASELINE_PATH, True))
    assert result["identical_paf"]
    assert result["align_speedup"] > MIN_SPEEDUP, result["align_speedup"]
    batch = result["rows"][1]
    assert batch["batched_jobs"] > 0
    assert 0.0 < batch["occupancy_pct"] <= 100.0


def test_gcups_gate_vs_committed_baseline():
    """The report --compare engine gates fresh GCUPS vs the baseline."""
    result = run_wavefront_bench(smoke=baseline_variant(BASELINE_PATH, True))
    cmp = gate_against_baseline(result)
    if cmp is None:
        import pytest

        pytest.skip("no comparable committed baseline")
    assert cmp["ok"], (
        f"wavefront throughput regressed beyond {cmp['tolerance_pct']:.0f}% "
        f"of the committed baseline: {cmp['regressions']}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fast workload")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE_PCT,
        metavar="PCT",
        help="allowed relative throughput drop vs baseline "
        f"(default {DEFAULT_TOLERANCE_PCT:g}, env MANYMAP_BENCH_TOLERANCE)",
    )
    ap.add_argument(
        "--baseline",
        default=str(BASELINE_PATH),
        metavar="FILE",
        help="committed wavefront-bench JSON to gate against",
    )
    args = ap.parse_args(argv)
    result = run_wavefront_bench(
        smoke=baseline_variant(Path(args.baseline), args.smoke)
    )
    cmp = gate_against_baseline(
        result, baseline_path=Path(args.baseline), tolerance_pct=args.tolerance
    )
    text = result.pop("text")
    if cmp is not None:
        text += "\n\n" + render_compare(cmp)
        result["compare"] = cmp
    emit("BENCH_wavefront", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    write_json(RESULTS_DIR / JSON_NAME, result)
    wave = result["rows"][1]
    append_trajectory(
        "wavefront",
        reads_per_s=wave["reads_per_sec"],
        gcups=wave["gcups"],
        peak_rss_bytes=result["manifest"].get("peak_rss_bytes", 0),
        align_speedup=result["align_speedup"],
    )
    if result["align_speedup"] <= MIN_SPEEDUP:
        print(
            f"ERROR: wavefront speedup {result['align_speedup']:.2f}x "
            f"below the {MIN_SPEEDUP:g}x floor",
            file=sys.stderr,
        )
        return 1
    if cmp is not None and not cmp["ok"]:
        print(
            "ERROR: throughput regression vs baseline: "
            + ", ".join(cmp["regressions"]),
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
