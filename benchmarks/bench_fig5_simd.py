"""Figure 5: SIMD instruction-set comparison of mm2 vs manymap kernels.

Modeled GCUPS from the ISA cost tables (calibrated against this very
figure — see DESIGN.md), plus the *measured* NumPy-layout ratio, which
independently shows the same direction (manymap's shift-free layout is
faster even under NumPy, where the "shift" is two extra array copies).
"""

import time

import numpy as np

from _common import dp_pair, emit, ratio
from repro.align.manymap_kernel import align_manymap
from repro.align.mm2_kernel import align_mm2
from repro.align.scoring import Scoring
from repro.eval.report import render_table
from repro.machine.cpu import XEON_GOLD_5115
from repro.machine.isa import AVX2, AVX512BW, SSE2

PAPER_RATIOS = {  # Figure 5, manymap / minimap2
    ("sse2", "score"): 1.1, ("sse2", "path"): 1.1,
    ("avx2", "score"): 2.2, ("avx2", "path"): 1.6,
    ("avx512bw", "score"): 1.5, ("avx512bw", "path"): 1.5,
}


def measured_ratio(length: int = 2000, runs: int = 5) -> float:
    """Best-of-N wall-clock ratio mm2/manymap (min is noise-robust)."""
    t, q = dp_pair(length)
    sc = Scoring()

    def best(fn):
        times = []
        for _ in range(runs):
            t0 = time.perf_counter()
            fn(t, q, sc, mode="extend")
            times.append(time.perf_counter() - t0)
        return min(times)

    best(align_manymap)  # warm-up both code paths
    best(align_mm2)
    return best(align_mm2) / best(align_manymap)


def test_fig5_simd(benchmark):
    cpu = XEON_GOLD_5115
    rows = []
    for isa in (SSE2, AVX2, AVX512BW):
        for mode in ("score", "path"):
            many = cpu.micro_gcups("manymap", isa, mode, 4000)
            mm2 = cpu.micro_gcups("mm2", isa, mode, 4000)
            rows.append([
                f"{isa.name}/{mode}", f"{mm2:.0f}", f"{many:.0f}",
                f"{ratio(many, mm2):.2f}", f"{PAPER_RATIOS[(isa.name, mode)]:.2f}",
            ])
    m_ratio = benchmark.pedantic(measured_ratio, rounds=1, iterations=1)
    rows.append(["numpy/score (measured)", "-", "-", f"{m_ratio:.2f}", "~1.1 (SSE2)"])
    text = render_table(
        ["ISA/mode", "minimap2 GCUPS", "manymap GCUPS", "speedup", "paper"],
        rows, title="Figure 5: SIMD instruction sets (modeled + measured)",
    )
    emit("fig5_simd", text)

    # Shape: AVX2 shows the LARGEST gain (the paper's key observation).
    gains = {
        isa.name: ratio(
            cpu.micro_gcups("manymap", isa, "score", 4000),
            cpu.micro_gcups("mm2", isa, "score", 4000),
        )
        for isa in (SSE2, AVX2, AVX512BW)
    }
    assert gains["avx2"] > gains["avx512bw"] > gains["sse2"]
    assert m_ratio > 1.0  # the layout effect is real, not just modeled
