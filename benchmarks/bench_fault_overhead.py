"""Fault-machinery overhead gate: the clean path must stay clean.

The fault-tolerant runtime promises that a run with *no* policy
(``fault_policy=None``) pays nothing — :func:`repro.runtime.faults.
map_one_read` collapses to the same two aligner calls the runtime
always made — and that an *armed but untriggered* policy
(``on_error='retry'`` with no failing reads) costs only the per-read
attempt-loop bookkeeping. This bench times both against the pre-fault
baseline shape (serial backend, min-of-N wall clock) and gates the
armed/clean ratio at <2% (or a small absolute floor for sub-millisecond
noise on tiny smoke workloads).

Run standalone:

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py --smoke

or via pytest. Emits ``benchmarks/results/BENCH_fault_overhead.json``
and the usual ``.txt`` table.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from _common import RESULTS_DIR, emit, ratio, write_json

from repro import api
from repro.core.aligner import Aligner
from repro.runtime.faults import FaultPolicy
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

JSON_NAME = "BENCH_fault_overhead.json"

#: relative gate: armed-policy clean run <= 2% over no-policy run.
MAX_RATIO = 1.02
#: absolute slack for smoke-sized workloads where 2% is sub-millisecond.
ABS_SLACK_S = 0.05


def _workload(smoke: bool):
    genome = generate_genome(
        GenomeSpec(length=40_000 if smoke else 150_000, chromosomes=1),
        seed=31,
    )
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(
        mean=700.0 if smoke else 1500.0, sigma=0.4, max_length=3000
    )
    reads = list(sim.simulate(12 if smoke else 40, seed=37))
    return Aligner(genome, preset="test"), reads


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_fault_overhead(
    smoke: bool = True, repeats: int = 3, out_dir: Path = RESULTS_DIR
) -> Dict:
    """Time clean serial mapping with policy=None vs an armed policy."""
    aligner, reads = _workload(smoke)
    armed = FaultPolicy(on_error="retry", max_retries=2)

    # Warm up caches/JIT-free interpreter state once before timing.
    api.map_reads(aligner, reads)

    t_none = _best_of(repeats, lambda: api.map_reads(aligner, reads))
    t_armed = _best_of(
        repeats,
        lambda: api.map_reads(aligner, reads, fault_policy=armed),
    )
    rel = ratio(t_armed, t_none)
    within = t_armed <= t_none * MAX_RATIO or t_armed - t_none <= ABS_SLACK_S

    # Sanity: identical output with and without the armed policy.
    from repro.core.alignment import to_paf

    paf_none = [
        to_paf(a) for alns in api.map_reads(aligner, reads) for a in alns
    ]
    paf_armed = [
        to_paf(a)
        for alns in api.map_reads(aligner, reads, fault_policy=armed)
        for a in alns
    ]
    identical = paf_none == paf_armed

    result = {
        "benchmark": "fault_overhead",
        "smoke": smoke,
        "repeats": repeats,
        "n_reads": len(reads),
        "seconds_no_policy": t_none,
        "seconds_armed_policy": t_armed,
        "overhead_ratio": rel,
        "max_ratio": MAX_RATIO,
        "abs_slack_s": ABS_SLACK_S,
        "within_gate": within,
        "paf_identical": identical,
    }

    table = [
        "Clean-path overhead of the fault runtime (serial backend, "
        f"best of {repeats})",
        "",
        f"{'policy':<28}{'seconds':>12}{'ratio':>10}",
        f"{'none (fast path)':<28}{t_none:>12.4f}{1.0:>10.3f}",
        f"{'retry armed, no faults':<28}{t_armed:>12.4f}{rel:>10.3f}",
        "",
        f"gate: ratio <= {MAX_RATIO} (or +{ABS_SLACK_S}s abs) -> "
        f"{'PASS' if within else 'FAIL'}",
        f"PAF identical with/without policy: {identical}",
    ]
    emit("BENCH_fault_overhead", "\n".join(table))
    out_dir.mkdir(exist_ok=True)
    write_json(out_dir / JSON_NAME, result)
    return result


def test_fault_overhead():
    """CI gate: armed-but-idle fault policy costs <2% on the clean path."""
    res = run_fault_overhead(smoke=True)
    assert res["paf_identical"], "armed policy changed clean-run output"
    assert res["within_gate"], (
        f"fault machinery overhead {res['overhead_ratio']:.3f}x exceeds "
        f"{MAX_RATIO}x gate "
        f"({res['seconds_no_policy']:.4f}s -> "
        f"{res['seconds_armed_policy']:.4f}s)"
    )
    assert (RESULTS_DIR / JSON_NAME).exists()


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fast workload")
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)
    res = run_fault_overhead(smoke=args.smoke, repeats=args.repeats)
    if not res["paf_identical"]:
        print("ERROR: armed policy changed clean-run output", file=sys.stderr)
        return 1
    if not res["within_gate"]:
        print(
            f"ERROR: overhead ratio {res['overhead_ratio']:.3f} exceeds "
            f"{MAX_RATIO}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
