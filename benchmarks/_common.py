"""Shared helpers for the benchmark harnesses.

Every table/figure bench both prints its table (visible with
``pytest -s``) and writes it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

TRAJECTORY_NAME = "BENCH_trajectory.jsonl"


def emit(name: str, text: str) -> str:
    """Print a result block and persist it to benchmarks/results/."""
    from repro.utils.fsio import atomic_write

    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write(RESULTS_DIR / f"{name}.txt", text + "\n")
    print(f"\n{'=' * 70}\n{name}\n{'=' * 70}\n{text}")
    return text


def write_json(path, obj) -> int:
    """Atomically persist a ``BENCH_*.json`` result document.

    Same fsync+rename discipline as every other run artifact
    (``repro.utils.fsio.atomic_write``): a crash mid-bench leaves the
    previous result or the new one, never a torn JSON a CI gate would
    half-parse.
    """
    from repro.utils.fsio import atomic_write_json

    return atomic_write_json(path, obj)


def ratio(a: float, b: float) -> float:
    """Safe ratio for speedup columns."""
    return a / b if b else float("inf")


def append_trajectory(
    bench: str,
    reads_per_s: float = 0.0,
    gcups: float = 0.0,
    peak_rss_bytes: int = 0,
    **extra,
) -> dict:
    """Append one headline record to ``results/BENCH_trajectory.jsonl``.

    Each CI bench run appends its headline numbers here; the file is
    uploaded as an artifact, so the perf trajectory accumulates across
    PRs. ``manymap report --trajectory`` renders the history.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    rec = {
        "record": "bench",
        "bench": bench,
        "created_unix": time.time(),
        "commit": os.environ.get("GITHUB_SHA", ""),
        "reads_per_s": float(reads_per_s),
        "gcups": float(gcups),
        "peak_rss_bytes": int(peak_rss_bytes),
        **extra,
    }
    with open(RESULTS_DIR / TRAJECTORY_NAME, "a") as fh:
        fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return rec


def dp_pair(length: int, seed: int = 7):
    """A homologous DP pair: target + ~10%-mutated query (CLR-like)."""
    from repro.seq.alphabet import random_codes
    from repro.seq.mutate import MutationSpec, mutate_codes

    target = random_codes(length, seed=seed)
    query, _ = mutate_codes(
        target,
        MutationSpec(sub_rate=0.02, ins_rate=0.05, del_rate=0.04),
        seed=seed + 1,
    )
    return target, query
