"""Shared helpers for the benchmark harnesses.

Every table/figure bench both prints its table (visible with
``pytest -s``) and writes it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> str:
    """Print a result block and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{'=' * 70}\n{name}\n{'=' * 70}\n{text}")
    return text


def ratio(a: float, b: float) -> float:
    """Safe ratio for speedup columns."""
    return a / b if b else float("inf")


def dp_pair(length: int, seed: int = 7):
    """A homologous DP pair: target + ~10%-mutated query (CLR-like)."""
    from repro.seq.alphabet import random_codes
    from repro.seq.mutate import MutationSpec, mutate_codes

    target = random_codes(length, seed=seed)
    query, _ = mutate_codes(
        target,
        MutationSpec(sub_rate=0.02, ins_rate=0.05, del_rate=0.04),
        seed=seed + 1,
    )
    return target, query
