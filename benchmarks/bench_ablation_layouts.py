"""Ablations of manymap's design choices (DESIGN.md §6).

1. **Memory layouts** — manymap's t'-transform vs minimap2's shifted
   layout vs the rejected two-array-swap (§4.3.1): measured NumPy wall
   time and working-set bytes. Targets: manymap fastest; swap doubles
   the v/x working set.
2. **Longest-first batch sorting** (§4.4.4): simulated LPT makespan
   with and without sorting on the heavy-tailed Nanopore lengths.
3. **Occurrence filter** — seeding accuracy/work trade (minimap2 -f).
"""

import time

import numpy as np

from _common import dp_pair, emit, ratio
from repro.align.ablation import align_swap
from repro.align.manymap_kernel import align_manymap
from repro.align.mm2_kernel import align_mm2
from repro.align.scoring import Scoring
from repro.eval.report import render_table
from repro.runtime.scheduler import lpt_makespan


def _best(fn, t, q, runs=5):
    times = []
    for _ in range(runs):
        t0 = time.perf_counter()
        fn(t, q, Scoring(), mode="extend")
        times.append(time.perf_counter() - t0)
    return min(times)


def test_ablation_layouts(benchmark):
    t, q = dp_pair(2000)
    _best(align_manymap, t, q, runs=2)  # warm-up
    results = benchmark.pedantic(
        lambda: {
            "manymap (t' transform)": _best(align_manymap, t, q),
            "mm2 (shifted)": _best(align_mm2, t, q),
            "swap (double-buffer)": _best(align_swap, t, q),
        },
        rounds=1, iterations=1,
    )
    base = results["manymap (t' transform)"]
    # v/x working set per kernel (bytes of int64 lanes in our arrays).
    m, n = t.size, q.size
    vx_bytes = {
        "manymap (t' transform)": 2 * (n + 1) * 8,
        "mm2 (shifted)": 2 * m * 8,
        "swap (double-buffer)": 4 * m * 8,
    }
    rows = [
        [name, f"{sec * 1e3:.1f} ms", f"{ratio(sec, base):.2f}x",
         f"{vx_bytes[name]:,} B"]
        for name, sec in results.items()
    ]
    text = render_table(
        ["layout", "wall (2 kbp extend)", "vs manymap", "v/x working set"],
        rows, title="Ablation: DP memory layouts (measured)",
    )
    emit("ablation_layouts", text)

    # manymap is the fastest layout; swap doubles the v/x footprint.
    assert results["manymap (t' transform)"] <= results["mm2 (shifted)"] * 1.05
    assert vx_bytes["swap (double-buffer)"] == 2 * vx_bytes["mm2 (shifted)"]


def test_ablation_longest_first(benchmark, nanopore_reads):
    """Longest-first sorting cuts makespan on heavy-tailed batches."""
    lengths = [float(len(r)) for r in nanopore_reads]
    workers = 64

    def run():
        natural = lpt_makespan(lengths, workers)
        sorted_first = lpt_makespan(sorted(lengths, reverse=True), workers)
        worst = lpt_makespan(sorted(lengths), workers)  # longest LAST
        return natural, sorted_first, worst

    natural, sorted_first, worst = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["schedule", "makespan", "vs longest-first"],
        [
            ["longest-first (manymap)", f"{sorted_first:.0f}", "1.00x"],
            ["arrival order", f"{natural:.0f}", f"{natural / sorted_first:.2f}x"],
            ["shortest-first (worst)", f"{worst:.0f}", f"{worst / sorted_first:.2f}x"],
        ],
        title="Ablation: longest-first batch sorting (64 workers, ONT lengths)",
    )
    emit("ablation_longest_first", text)
    assert sorted_first <= natural <= worst
    assert worst > sorted_first  # the tail read dominates a late schedule


def test_ablation_occ_filter(benchmark, bench_genome):
    """Occurrence filtering: seeds kept vs filter fraction."""
    from repro.index.index import build_index
    from repro.seq.alphabet import random_codes

    def run():
        rows = []
        for frac in (None, 1e-2, 1e-3, 2e-4):
            idx = build_index(bench_genome, k=15, w=10, occ_filter_frac=frac)
            rows.append((frac, idx.max_occ, idx.n_minimizers))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["filter frac", "max_occ", "minimizers"],
        [[str(f), str(m), f"{n:,}"] for f, m, n in rows],
        title="Ablation: occurrence filter threshold",
    )
    emit("ablation_occ_filter", text)
    # Dropping a larger fraction of frequent keys means a LOWER cutoff:
    # cutoffs rise as the filter fraction shrinks (minimap2 -f semantics).
    cutoffs = [m for f, m, n in rows if m is not None]
    assert cutoffs == sorted(cutoffs)
    assert cutoffs[0] >= 1
