"""Figure 9: manymap scalability on KNL, threads 1-256 (simulated).

Per-read alignment costs come from the measured Python pipeline (cost
proportional to read length x error-driven DP work); the thread
scaling is the KNL scheduler model (hyper-thread curve + serial I/O
residue). Reproduction targets: ~79% parallel efficiency at 64 threads
on the simulated dataset; only ~21% additional gain from 4-way
hyper-threading (shared tile L2).
"""

import numpy as np

from _common import emit
from repro.eval.report import render_table
from repro.machine.knl import XEON_PHI_7210
from repro.runtime.affinity import SCATTER
from repro.runtime.scheduler import simulate_makespan

THREADS = [1, 2, 4, 8, 16, 32, 64, 128, 192, 256]


def read_costs(reads, knl):
    """Per-read single-thread KNL seconds: proportional to bases.

    The proportionality constant is the KNL align-stage rate implied by
    the paper's Table 2 (1482 s for ~5 Gbase => ~0.3 us/base), scaled
    to our dataset.
    """
    per_base = 1481.59 / 4_985_012_420
    return [len(r) * per_base * 1e3 for r in reads]  # ms-scale jobs


def scalability(reads, serial_frac=0.004):
    knl = XEON_PHI_7210
    costs = read_costs(reads, knl)
    total = sum(costs)
    serial = serial_frac * total
    out = {}
    for t in THREADS:
        out[t] = simulate_makespan(
            costs, t, knl.cores, knl.threads_per_core, knl.ht_curve,
            SCATTER, serial_seconds=serial,
        )
    return out


def test_fig9_scalability(benchmark, pacbio_reads, nanopore_reads):
    sim_pb = benchmark.pedantic(
        scalability, args=(list(pacbio_reads) * 40,), rounds=1, iterations=1
    )
    sim_ont = scalability(list(nanopore_reads) * 40)
    rows = []
    for t in THREADS:
        sp_pb = sim_pb[1] / sim_pb[t]
        sp_ont = sim_ont[1] / sim_ont[t]
        rows.append([
            t, f"{sim_pb[t]:.3f}", f"{sp_pb:.1f}", f"{100 * sp_pb / t:.0f}%",
            f"{sim_ont[t]:.3f}", f"{sp_ont:.1f}",
        ])
    text = render_table(
        ["threads", "PacBio s", "speedup", "efficiency", "ONT s", "speedup"],
        rows, title="Figure 9: KNL thread scalability (simulated)",
    )
    emit("fig9_scalability", text)

    sp64 = sim_pb[1] / sim_pb[64]
    # Paper: speedup 50.55 at 64 threads = 79% efficiency.
    assert 45.0 <= sp64 <= 58.0
    # Hyper-threading adds only ~21% beyond physical cores.
    ht_gain = sim_pb[64] / sim_pb[256]
    assert 1.10 <= ht_gain <= 1.30
    # Monotone improvement throughout.
    for a, b in zip(THREADS, THREADS[1:]):
        assert sim_pb[b] <= sim_pb[a] + 1e-12
