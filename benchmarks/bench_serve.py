"""Serving-shape benchmark: the ``repro serve`` front-end under load.

Boots an in-process :class:`~repro.serve.ServerThread` over one
resident :class:`~repro.api.MappingSession` and drives it with 1 / 8 /
32 concurrent HTTP clients (1 / 8 in ``--smoke`` mode), measuring
requests/s and p50/p99 request latency per concurrency level against
the one-shot in-process baseline. Three gates ride along:

- **identity** — every served PAF line must match the one-shot
  reference for the same read (order-normalized per read);
- **coalescing** — at the highest concurrency the batcher must execute
  fewer batches than it admitted requests (the adaptive batcher is the
  whole point of the serving shape: concurrent small requests share
  pooled DP batches);
- **latency** — p99 request latency must sit within the server's
  ``latency_target_ms`` at every level.

Run standalone (CI smoke mode stays well under a minute):

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke

or via pytest (``pytest benchmarks/bench_serve.py``). Emits
``benchmarks/results/BENCH_serve.json`` plus the usual ``.txt`` table,
and appends the headline numbers to ``BENCH_trajectory.jsonl``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from _common import RESULTS_DIR, append_trajectory, emit

from repro import api
from repro.api import MapRequest, MappingSession, ServeConfig
from repro.core.aligner import Aligner
from repro.core.alignment import to_paf
from repro.obs.counters import COUNTERS
from repro.seq.genome import GenomeSpec, generate_genome
from repro.serve import ServeClient, ServerThread
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

JSON_NAME = "BENCH_serve.json"

#: the latency SLO the server adapts against — and the bench's p99
#: gate. Generous for CI: pure-Python mapping on a shared runner.
LATENCY_TARGET_MS = 20_000.0

READS_PER_REQUEST = 2


def build_workload(smoke: bool):
    genome = generate_genome(
        GenomeSpec(length=120_000 if smoke else 200_000, chromosomes=2),
        seed=31,
    )
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(
        mean=600.0 if smoke else 1200.0, sigma=0.4, max_length=3000
    )
    reads = list(sim.simulate(16 if smoke else 64, seed=32))
    return Aligner(genome, preset="test"), reads


def percentile(values: List[float], q: float) -> float:
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


def one_shot_reference(aligner, reads) -> Dict[str, List[str]]:
    """read name -> sorted PAF lines from the one-shot path."""
    results = api.map_reads(aligner, reads)
    return {
        read.name: sorted(to_paf(a) for a in alns)
        for read, alns in zip(reads, results)
    }


def time_one_shot(session, reads) -> Dict:
    t0 = time.perf_counter()
    session.map_batch(reads)
    wall = time.perf_counter() - t0
    return {
        "reads": len(reads),
        "seconds": wall,
        "reads_per_s": len(reads) / wall if wall > 0 else 0.0,
    }


def run_level(session, reads, reference, clients: int) -> Dict:
    """One concurrency level against a fresh server; returns its row."""
    requests = []
    n_requests = max(clients, len(reads) // READS_PER_REQUEST)
    for i in range(n_requests):
        lo = (i * READS_PER_REQUEST) % len(reads)
        chunk = reads[lo : lo + READS_PER_REQUEST] or reads[:1]
        requests.append(MapRequest.make(chunk, request_id=f"c{clients}-{i}"))

    config = ServeConfig(
        latency_target_ms=LATENCY_TARGET_MS,
        batch_timeout_ms=25.0,
        max_batch_reads=64,
    )
    before = COUNTERS.totals()
    with ServerThread(session, config) as st:
        client = ServeClient(st.url, timeout_s=600.0)
        latencies: List[float] = []
        identity_ok = True
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            results = list(pool.map(client.map, requests))
        wall = time.perf_counter() - t0
    after = COUNTERS.totals()

    n_reads = 0
    for req, res in zip(requests, results):
        assert res.ok, f"request {req.request_id} failed: {res.error}"
        latencies.append(res.total_ms)
        n_reads += len(res.paf)
        for name, lines in zip(res.read_names, res.paf):
            if sorted(lines) != reference[name]:
                identity_ok = False

    delta = lambda k: after.get(k, 0) - before.get(k, 0)  # noqa: E731
    admitted, batches = delta("serve.admitted"), delta("serve.batches")
    return {
        "clients": clients,
        "requests": len(requests),
        "reads": n_reads,
        "seconds": wall,
        "rps": len(requests) / wall if wall > 0 else 0.0,
        "reads_per_s": n_reads / wall if wall > 0 else 0.0,
        "p50_ms": percentile(latencies, 0.50),
        "p99_ms": percentile(latencies, 0.99),
        "admitted": admitted,
        "batches": batches,
        "coalesced_batches": delta("serve.coalesced"),
        "mean_requests_per_batch": admitted / batches if batches else 0.0,
        "identity_ok": identity_ok,
        "p99_within_target": percentile(latencies, 0.99)
        <= LATENCY_TARGET_MS,
    }


def run_bench_serve(smoke: bool = False) -> Dict:
    aligner, reads = build_workload(smoke)
    reference = one_shot_reference(aligner, reads)
    levels = [1, 8] if smoke else [1, 8, 32]
    with MappingSession(aligner) as session:
        one_shot = time_one_shot(session, reads)
        rows = [
            run_level(session, reads, reference, clients)
            for clients in levels
        ]

    top = rows[-1]
    res = {
        "record": "bench_serve",
        "smoke": smoke,
        "latency_target_ms": LATENCY_TARGET_MS,
        "one_shot": one_shot,
        "levels": rows,
        "identity_ok": all(r["identity_ok"] for r in rows),
        "coalescing_ok": top["batches"] < top["admitted"],
        "p99_ok": all(r["p99_within_target"] for r in rows),
    }

    lines = [
        f"one-shot baseline: {one_shot['reads']} reads in "
        f"{one_shot['seconds']:.2f}s ({one_shot['reads_per_s']:.1f} reads/s)",
        "",
        f"{'clients':>7} {'reqs':>5} {'rps':>7} {'p50 ms':>9} "
        f"{'p99 ms':>9} {'batches':>8} {'req/batch':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r['clients']:>7} {r['requests']:>5} {r['rps']:>7.2f} "
            f"{r['p50_ms']:>9.1f} {r['p99_ms']:>9.1f} "
            f"{r['batches']:>8} {r['mean_requests_per_batch']:>9.2f}"
        )
    lines.append("")
    lines.append(
        f"identity={'OK' if res['identity_ok'] else 'FAIL'} "
        f"coalescing={'OK' if res['coalescing_ok'] else 'FAIL'} "
        f"(top level: {top['batches']} batches for {top['admitted']} "
        f"requests) p99-gate={'OK' if res['p99_ok'] else 'FAIL'}"
    )
    emit("BENCH_serve", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / JSON_NAME, "w") as fh:
        json.dump(res, fh, indent=2, sort_keys=True)
        fh.write("\n")
    append_trajectory(
        "serve",
        reads_per_s=top["reads_per_s"],
        rps=top["rps"],
        p50_ms=top["p50_ms"],
        p99_ms=top["p99_ms"],
        clients=top["clients"],
        mean_requests_per_batch=top["mean_requests_per_batch"],
    )
    return res


def test_bench_serve_smoke():
    res = run_bench_serve(smoke=True)
    assert res["identity_ok"], "served PAF diverged from one-shot"
    assert res["coalescing_ok"], (
        "no coalescing at the top concurrency level: "
        f"{res['levels'][-1]['batches']} batches for "
        f"{res['levels'][-1]['admitted']} requests"
    )
    assert res["p99_ok"], "p99 latency exceeded the serve target"
    assert (RESULTS_DIR / JSON_NAME).exists()


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fast workload")
    args = ap.parse_args(argv)
    res = run_bench_serve(smoke=args.smoke)
    if not res["identity_ok"]:
        print("ERROR: served PAF diverged from one-shot", file=sys.stderr)
        return 1
    if not res["coalescing_ok"]:
        print(
            "ERROR: no request coalescing at the top concurrency level",
            file=sys.stderr,
        )
        return 1
    if not res["p99_ok"]:
        print(
            f"ERROR: p99 latency exceeded {LATENCY_TARGET_MS}ms",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
