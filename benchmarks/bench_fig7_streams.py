"""Figure 7: concurrent CUDA streams on the GPU (modeled + simulated).

Reproduction targets: linear speedup from 1 to 64 streams; at 128
streams the maximum resident-grid limit is reached and the gain is
sub-linear — overall speedups ~90x (score) and ~77x (path). The
discrete-event StreamScheduler independently reproduces the same curve
from kernel tasks.
"""

from _common import emit, ratio
from repro.eval.report import render_table
from repro.machine.gpu import TESLA_V100
from repro.runtime.gpu_streams import KernelTask, MemoryPool, StreamScheduler

STREAMS = [1, 2, 4, 8, 16, 32, 64, 128]
PAPER = {"score": 90.0, "path": 77.4}


def simulated_speedups():
    """Makespan-based speedups from the discrete-event scheduler."""
    tasks = [KernelTask(duration_s=0.002, mem_bytes=40_000) for _ in range(512)]
    base = StreamScheduler(n_streams=1).makespan(tasks)
    out = {}
    for n in STREAMS:
        pool = MemoryPool(slot_bytes=1 << 20, n_slots=n)
        sched = StreamScheduler(n_streams=n, pool=pool)
        out[n] = base / sched.makespan(tasks)
    return out


def test_fig7_streams(benchmark):
    sim = benchmark.pedantic(simulated_speedups, rounds=1, iterations=1)
    gpu = TESLA_V100
    rows = []
    for n in STREAMS:
        rows.append([
            n,
            f"{gpu.stream_speedup(n, 'score'):.1f}",
            f"{gpu.stream_speedup(n, 'path'):.1f}",
            f"{sim[n]:.1f}",
        ])
    rows.append(["paper @128", f"{PAPER['score']}", f"{PAPER['path']}", "-"])
    text = render_table(
        ["streams", "model score", "model path", "simulated"],
        rows, title="Figure 7: CUDA stream scaling (4 kbp workload)",
    )
    emit("fig7_streams", text)

    # Linear to 64 on both modes.
    for n in (1, 2, 4, 8, 16, 32, 64):
        assert gpu.stream_speedup(n, "score") == float(n)
    # Sub-linear but positive gain at 128, matching the paper's numbers.
    assert 85.0 <= gpu.stream_speedup(128, "score") <= 95.0
    assert 73.0 <= gpu.stream_speedup(128, "path") <= 82.0
    # The discrete-event simulation agrees within 15% at every point.
    for n in STREAMS:
        assert abs(sim[n] - gpu.stream_speedup(n, "score")) / n < 0.35
