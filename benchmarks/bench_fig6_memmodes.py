"""Figure 6: KNL memory modes (MCDRAM flat vs DDR-only), modeled.

Reproduction targets from the paper:
* score-only: no MCDRAM advantage for short sequences (cache-resident);
  up to ~5x once the aggregate working set streams from DRAM (>=16 kbp);
* with path: ~1.8x while the aggregate fits MCDRAM's 16 GB; parity once
  the 256-thread working set exceeds it (the paper's 8 kbp / 18 GB
  example).
"""

from _common import emit, ratio
from repro.eval.report import render_table
from repro.machine.cost import working_set_bytes
from repro.machine.knl import KnlModel, XEON_PHI_7210
from repro.utils.fmt import human_bytes

LENGTHS = [1000, 2000, 4000, 8000, 16000, 32000]


def build_table():
    flat = XEON_PHI_7210
    ddr = KnlModel(memory_mode="ddr")
    rows = []
    for mode in ("score", "path"):
        for L in LENGTHS:
            a = flat.micro_gcups("manymap", mode, L)
            b = ddr.micro_gcups("manymap", mode, L)
            ws = working_set_bytes(L, mode, concurrent=flat.max_threads)
            rows.append([
                f"{mode}/{L}", human_bytes(ws), f"{a:.1f}", f"{b:.1f}",
                f"{ratio(a, b):.2f}",
            ])
    return flat, ddr, rows


def test_fig6_memory_modes(benchmark):
    flat, ddr, rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    text = render_table(
        ["mode/len", "aggregate WS", "MCDRAM GCUPS", "DDR GCUPS", "speedup"],
        rows, title="Figure 6: KNL memory modes (modeled, 256 threads)",
    )
    emit("fig6_memmodes", text)

    # Score: parity short, big win long.
    assert flat.micro_gcups("manymap", "score", 1000) == ddr.micro_gcups(
        "manymap", "score", 1000
    )
    long_gain = ratio(
        flat.micro_gcups("manymap", "score", 32000),
        ddr.micro_gcups("manymap", "score", 32000),
    )
    assert 4.0 <= long_gain <= 6.0

    # Path: ~1.8x while fitting, parity once spilled past 16 GB.
    fit_gain = ratio(
        flat.micro_gcups("manymap", "path", 4000),
        ddr.micro_gcups("manymap", "path", 4000),
    )
    spill_gain = ratio(
        flat.micro_gcups("manymap", "path", 8000),
        ddr.micro_gcups("manymap", "path", 8000),
    )
    assert 1.6 <= fit_gain <= 2.0
    assert spill_gain == 1.0
    # The spill point matches the paper's example: 8 kbp needs > 16 GB.
    assert working_set_bytes(8000, "path", concurrent=256) > 16 * 1024**3
    assert working_set_bytes(4000, "path", concurrent=256) < 16 * 1024**3


def test_fig6_cache_mode_between(benchmark):
    """Flat mode beats cache mode slightly (tag overhead), both beat DDR."""
    def run():
        return (
            XEON_PHI_7210.micro_gcups("manymap", "score", 32000),
            KnlModel(memory_mode="cache").micro_gcups("manymap", "score", 32000),
            KnlModel(memory_mode="ddr").micro_gcups("manymap", "score", 32000),
        )

    flat, cache, ddr = benchmark.pedantic(run, rounds=1, iterations=1)
    assert flat > cache > ddr
