"""Parallel scaling: reads/sec vs workers for every mapping backend.

Measures the serial, thread-pool, process-pool, and streaming-pipeline
backends over the same simulated read set and asserts they produce
identical alignments.
This is the repo's CPython analogue of the paper's §4.4 scalability
runs (Figure 9): the thread backend is GIL-bound outside NumPy kernels
while the process backend runs one full aligner per core over an
mmap-shared index, so on a multi-core machine the two curves cross
almost immediately — processes should reach >= 2x the thread backend's
reads/sec at 4 workers on >= 4 cores.

Run standalone (CI smoke mode stays well under a minute):

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --smoke

or via pytest (``pytest benchmarks/bench_parallel_scaling.py``).
Emits ``benchmarks/results/BENCH_parallel_scaling.json`` plus the
usual ``.txt`` table.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from _common import RESULTS_DIR, append_trajectory, emit, ratio, write_json

from repro.core.aligner import Aligner
from repro.core.alignment import to_paf
from repro.index.store import save_index
from repro import api
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

JSON_NAME = "BENCH_parallel_scaling.json"


def _workload(smoke: bool, n_reads: Optional[int] = None):
    genome = generate_genome(
        GenomeSpec(length=60_000 if smoke else 150_000, chromosomes=1),
        seed=11,
    )
    sim = ReadSimulator.preset(genome, "pacbio")
    # The smoke set must stay big enough that a 4-worker process pool's
    # spin-up (fork + per-worker mmap rebuild) is well amortized, or the
    # CI >= 2x-over-threads gate would be startup-noise flaky.
    sim.length_model = LengthModel(
        mean=900.0 if smoke else 1500.0, sigma=0.4, max_length=4000
    )
    reads = sim.simulate(n_reads or (24 if smoke else 48), seed=71)
    return genome, list(reads)


def run_scaling(
    smoke: bool = False,
    worker_counts: Sequence[int] = (1, 2, 4),
    n_reads: Optional[int] = None,
    out_dir: Path = RESULTS_DIR,
) -> Dict:
    """Time every backend at every worker count; return the result dict."""
    genome, reads = _workload(smoke, n_reads)
    aligner = Aligner(genome, preset="test")
    index_path = out_dir / "_scaling_index.mmi"
    out_dir.mkdir(exist_ok=True)
    save_index(aligner.index, index_path)

    def paf(results) -> List[str]:
        return [to_paf(a) for alns in results for a in alns]

    rows: List[Dict] = []
    baseline_paf: Optional[List[str]] = None
    baseline_rps: Optional[float] = None
    identical = True
    try:
        for backend in ("serial", "threads", "processes", "streaming"):
            counts = [1] if backend == "serial" else list(worker_counts)
            for workers in counts:
                t0 = time.perf_counter()
                results = api.map_reads(
                    aligner,
                    reads,
                    backend=backend,
                    workers=workers,
                    with_cigar=True,
                    chunk_reads=3,
                    index_path=str(index_path),
                )
                seconds = time.perf_counter() - t0
                lines = paf(results)
                if baseline_paf is None:
                    baseline_paf = lines
                identical = identical and lines == baseline_paf
                rps = len(reads) / seconds if seconds else float("inf")
                if baseline_rps is None:
                    baseline_rps = rps
                rows.append(
                    {
                        "backend": backend,
                        "workers": workers,
                        "seconds": round(seconds, 4),
                        "reads_per_sec": round(rps, 3),
                        "speedup_vs_serial": round(ratio(rps, baseline_rps), 3),
                    }
                )
    finally:
        try:
            os.unlink(index_path)
        except OSError:
            pass

    by_bw = {(r["backend"], r["workers"]): r["reads_per_sec"] for r in rows}
    max_workers = max(worker_counts)
    result = {
        "benchmark": "parallel_scaling",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "n_reads": len(reads),
        "total_bases": sum(len(r) for r in reads),
        "worker_counts": list(worker_counts),
        "identical_paf": identical,
        "rows": rows,
        "process_over_thread_at_max": round(
            ratio(
                by_bw.get(("processes", max_workers), 0.0),
                by_bw.get(("threads", max_workers), 0.0),
            ),
            3,
        ),
    }

    table = [f"{'backend':<11}{'workers':>8}{'sec':>9}{'reads/s':>10}{'vs serial':>11}"]
    for r in rows:
        table.append(
            f"{r['backend']:<11}{r['workers']:>8}{r['seconds']:>9.3f}"
            f"{r['reads_per_sec']:>10.2f}{r['speedup_vs_serial']:>10.2f}x"
        )
    table.append(
        f"\nidentical PAF across backends/workers: {identical}"
        f"\nprocesses/threads reads-per-sec ratio at {max_workers} workers: "
        f"{result['process_over_thread_at_max']:.2f}x "
        f"({os.cpu_count()} CPU core(s) visible)"
    )
    emit("BENCH_parallel_scaling", "\n".join(table))
    write_json(out_dir / JSON_NAME, result)
    best = max(rows, key=lambda r: r["reads_per_sec"]) if rows else {}
    append_trajectory(
        "parallel_scaling",
        reads_per_s=best.get("reads_per_sec", 0.0),
        backend=best.get("backend", ""),
        workers=best.get("workers", 0),
    )
    return result


def test_parallel_scaling_smoke():
    """CI smoke: identical output everywhere; speedup asserted on >=4 cores."""
    res = run_scaling(smoke=True, worker_counts=(1, 2, 4))
    assert res["identical_paf"], "backends disagreed on alignments"
    assert (RESULTS_DIR / JSON_NAME).exists()
    if (os.cpu_count() or 1) >= 4:
        assert res["process_over_thread_at_max"] >= 2.0, (
            "process backend should be >= 2x the thread backend at 4 "
            f"workers on >= 4 cores, got {res['process_over_thread_at_max']}x"
        )


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fast workload")
    ap.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts (default 1,2,4)",
    )
    ap.add_argument("--n-reads", type=int, default=None)
    args = ap.parse_args(argv)
    counts = tuple(int(w) for w in args.workers.split(","))
    res = run_scaling(smoke=args.smoke, worker_counts=counts, n_reads=args.n_reads)
    if not res["identical_paf"]:
        print("ERROR: backends produced different alignments", file=sys.stderr)
        return 1
    edge = res["process_over_thread_at_max"]
    if (os.cpu_count() or 1) >= 4 and max(counts) >= 4 and edge < 2.0:
        print(
            f"ERROR: process backend only {edge:.2f}x the thread backend "
            f"at {max(counts)} workers on a >=4-core machine (want >= 2x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
