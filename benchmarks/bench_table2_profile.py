"""Table 2: single-thread stage breakdown of minimap2 on CPU vs KNL.

Measured: the real stage seconds of our pipeline (mm2 engine, one
thread) — the "CPU" column. Modeled: the KNL column derives from the
measured stage times via the calibrated per-stage single-thread
slowdowns of the KNL model. The reproduction target is the paper's
headline: Align dominates (65% CPU / 83% KNL), and the KNL percentage
is HIGHER because the vectorized align stage ports worst.
"""

import io

import pytest

from _common import emit
from repro.core.aligner import Aligner
from repro.core.driver import BatchDriver
from repro.core.profiling import STAGES, PipelineProfile
from repro.eval.report import render_table
from repro.index.index import build_index
from repro.index.store import save_index

PAPER = {  # Table 2 of the paper (seconds, %)
    "CPU": {"Load Index": (4.71, 3.89), "Load Query": (0.43, 0.36),
            "Seed & Chain": (35.79, 29.56), "Align": (79.22, 65.42),
            "Output": (0.93, 0.77)},
    "KNL": {"Load Index": (28.74, 1.60), "Load Query": (3.58, 0.20),
            "Seed & Chain": (266.90, 14.90), "Align": (1481.59, 82.69),
            "Output": (9.85, 0.61)},
}


def run_profile(bench_genome, pacbio_reads, tmp_path):
    idx = build_index(bench_genome, k=15, w=10)
    path = tmp_path / "ref.mmi"
    save_index(idx, path)
    driver = BatchDriver.from_index_file(
        bench_genome, path, load_mode="buffered", preset="map-pb", engine="mm2",
        label="CPU (measured)",
    )
    reads = driver.load_reads(pacbio_reads)
    driver.run(reads, output=io.StringIO())
    return driver.profile


def test_table2_breakdown(benchmark, bench_genome, pacbio_reads, tmp_path):
    from repro.machine.knl import XEON_PHI_7210

    cpu = benchmark.pedantic(
        run_profile, args=(bench_genome, pacbio_reads, tmp_path),
        rounds=1, iterations=1,
    )
    knl = PipelineProfile(label="KNL (modeled)")
    for stage in STAGES:
        knl.add(stage, cpu.seconds(stage) * XEON_PHI_7210.stage_slowdown[stage])

    rows = []
    for stage in STAGES:
        rows.append([
            stage,
            f"{cpu.seconds(stage):.2f}", f"{cpu.percentage(stage):.2f}",
            f"{knl.seconds(stage):.2f}", f"{knl.percentage(stage):.2f}",
            f"{PAPER['CPU'][stage][1]:.2f}", f"{PAPER['KNL'][stage][1]:.2f}",
        ])
    text = render_table(
        ["Stage", "CPU s", "CPU %", "KNL s", "KNL %", "paper CPU %", "paper KNL %"],
        rows,
        title="Table 2: performance breakdown of minimap2 (1 thread)",
    )
    emit("table2_profile", text)

    # Shape assertions: Align dominates on both, and MORE on KNL.
    assert cpu.percentage("Align") > 50.0
    assert knl.percentage("Align") > cpu.percentage("Align")
    # KNL's index loading is several times slower in absolute terms.
    assert knl.seconds("Load Index") > 3 * cpu.seconds("Load Index")
