"""Figure 10: thread-affinity strategies on KNL (simulated).

Model: compute makespan from the affinity placement's worker speeds
(compact concentrates threads on few cores; scatter spreads), plus the
pipeline's I/O stream whose rate depends on whether the I/O thread owns
a core. ``optimized`` reserves one core for I/O (§4.4.3).

Reproduction targets: compact ~2x slower than scatter at low thread
counts, converging as cores fill; optimized == scatter until cores are
saturated, then up to ~22% faster at >=150 threads (the paper's number
for the simulated dataset).
"""

import numpy as np

from _common import emit, ratio
from repro.eval.report import render_table
from repro.machine.knl import XEON_PHI_7210
from repro.runtime.affinity import COMPACT, OPTIMIZED, SCATTER, assign_threads
from repro.runtime.scheduler import heterogeneous_makespan, worker_speeds

THREADS = [8, 16, 32, 64, 96, 128, 150, 192, 256]

#: serial-equivalent I/O work as a fraction of total alignment work
#: (from Table 2: KNL load+output ~2.4% single-thread; here relative to
#: the parallel compute it must hide under — calibrated to Figure 10's
#: <=22% optimized-vs-scatter gap).
IO_FRAC = 0.0155
#: extra I/O slowdown per compute hyper-thread on the I/O core beyond
#: two — one or two co-resident threads barely hurt a KNL core's I/O,
#: three or four starve it (shared tile L2 + issue slots).
IO_CONTENTION = 0.16


def runtime(policy, threads, costs, knl):
    """max(compute, io) — a saturated 3-thread pipeline's makespan."""
    if policy.reserve_io_core:
        # The reservation holds: compute uses at most (P-1)*k threads.
        threads = min(threads, (knl.cores - 1) * knl.threads_per_core)
    speeds = worker_speeds(threads, knl.cores, knl.threads_per_core,
                           knl.ht_curve, policy)
    compute = heterogeneous_makespan(costs, speeds)
    io_base = IO_FRAC * sum(costs)
    counts = assign_threads(policy, threads, knl.cores, knl.threads_per_core)
    # The I/O thread lands on the least-loaded core; if a core is still
    # completely free it runs uncontended.
    free_cores = knl.cores - len(counts)
    n_shared = 0 if free_cores > 0 else min(counts.values())
    io = io_base * (1.0 + IO_CONTENTION * max(0, n_shared - 2))
    return max(compute, io)


def build(costs):
    knl = XEON_PHI_7210
    table = {}
    for t in THREADS:
        table[t] = {
            p.name: runtime(p, t, costs, knl)
            for p in (COMPACT, SCATTER, OPTIMIZED)
        }
    return table


def test_fig10_affinity(benchmark, pacbio_reads):
    rng = np.random.default_rng(0)
    costs = [len(r) * 3e-4 for r in pacbio_reads] * 40
    table = benchmark.pedantic(build, args=(costs,), rounds=1, iterations=1)
    rows = []
    for t in THREADS:
        row = table[t]
        rows.append([
            t, f"{row['compact']:.2f}", f"{row['scatter']:.2f}",
            f"{row['optimized']:.2f}",
            f"{100 * (row['scatter'] / row['optimized'] - 1):.0f}%",
        ])
    text = render_table(
        ["threads", "compact s", "scatter s", "optimized s", "opt gain"],
        rows, title="Figure 10: thread affinity strategies (simulated)",
    )
    emit("fig10_affinity", text)

    # Compact is ~2x slower while cores are underfilled.
    for t in (8, 16, 32):
        assert table[t]["compact"] / table[t]["scatter"] > 1.7
    # Compact converges to scatter at full subscription.
    assert table[256]["compact"] / table[256]["scatter"] < 1.1
    # Optimized == scatter while a core is free for I/O anyway.
    for t in (8, 16, 32):
        assert table[t]["optimized"] == table[t]["scatter"]
    # No meaningful gain before cores saturate...
    for t in (64, 96, 128):
        assert table[t]["scatter"] / table[t]["optimized"] < 1.05
    # ...then up to ~22% at >=150 threads (paper's number), peaking at 256.
    gains = [table[t]["scatter"] / table[t]["optimized"] for t in (150, 192, 256)]
    assert gains[-1] == max(gains)
    assert 1.15 <= max(gains) <= 1.30
