"""CI perf-regression gate: fresh smoke run vs the committed baseline.

Re-runs the :mod:`bench_metrics_smoke` serial workload, then diffs the
fresh manifest against the committed
``benchmarks/results/BENCH_metrics_smoke.json`` baseline with
:func:`repro.obs.report.compare_metrics` — the same engine behind
``manymap report --compare``. A gated throughput metric (GCUPS,
reads/s, bases/s) more than ``--tolerance`` percent below baseline
fails the gate with exit code 3 (matching the CLI), so CI catches
changes that quietly slow the mapping hot path.

The default tolerance is deliberately generous (60%, override with
``--tolerance`` or ``MANYMAP_BENCH_TOLERANCE``): committed baselines
come from a different machine than the CI runner, so the gate is a
collapse detector, not a microbenchmark. ``--inject-regression N``
divides the fresh run's throughput by N before comparing — CI uses it
to prove the gate actually fires.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_compare.py --smoke

or via pytest. Emits ``benchmarks/results/BENCH_compare.json`` and the
usual ``.txt`` table.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

from _common import RESULTS_DIR, emit, write_json

from bench_metrics_smoke import _workload
from repro.core.aligner import Aligner
from repro.core.driver import ParallelDriver
from repro.obs.report import compare_metrics, render_compare

JSON_NAME = "BENCH_compare.json"
BASELINE_PATH = RESULTS_DIR / "BENCH_metrics_smoke.json"

#: Cross-machine collapse-detector tolerance, not a microbenchmark gate.
DEFAULT_TOLERANCE_PCT = float(os.environ.get("MANYMAP_BENCH_TOLERANCE", "60"))


def fresh_manifest(smoke: bool = True) -> Dict:
    """One serial smoke run -> its metrics manifest."""
    genome, reads = _workload(smoke)
    driver = ParallelDriver(Aligner(genome, preset="test"), backend="serial")
    driver.run(reads)
    manifest = driver.metrics()
    manifest["label"] = "fresh"
    return manifest


def run_compare(
    smoke: bool = True,
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
    baseline_path: Path = BASELINE_PATH,
    inject_regression: float = 1.0,
    out_dir: Path = RESULTS_DIR,
) -> Dict:
    """Compare a fresh run against the committed baseline manifest.

    The fresh run replays whichever workload variant the baseline file
    records (``smoke`` field), so the diff is always apples-to-apples;
    the ``smoke`` argument only applies to baselines predating that
    field.
    """
    doc = json.loads(Path(baseline_path).read_text())
    baseline = doc["manifest"]
    baseline.setdefault("label", "baseline")
    candidate = fresh_manifest(bool(doc.get("smoke", smoke)))
    if inject_regression != 1.0:
        for key in ("gcups", "reads_per_sec", "bases_per_sec"):
            candidate["derived"][key] /= inject_regression
        candidate["label"] = f"fresh/{inject_regression:g}"
    cmp = compare_metrics(baseline, candidate, tolerance_pct=tolerance_pct)

    result = {
        "benchmark": "compare",
        "smoke": smoke,
        "baseline_path": str(baseline_path),
        "inject_regression": inject_regression,
        "compare": cmp,
    }
    if inject_regression == 1.0:
        # Injected self-test runs must not clobber the real artifact.
        emit("BENCH_compare", render_compare(cmp))
        out_dir.mkdir(exist_ok=True)
        write_json(out_dir / JSON_NAME, result)
    else:
        print(render_compare(cmp))
    return result


def test_compare_gate_passes():
    """CI gate: a fresh smoke run stays within tolerance of the baseline."""
    res = run_compare(smoke=True)
    cmp = res["compare"]
    assert cmp["ok"], (
        f"throughput regressed beyond {cmp['tolerance_pct']:.0f}% of the "
        f"committed baseline: {cmp['regressions']}"
    )
    assert (RESULTS_DIR / JSON_NAME).exists()


def test_injected_regression_is_detected():
    """The gate must fire when throughput genuinely collapses."""
    res = run_compare(smoke=True, inject_regression=1000.0)
    cmp = res["compare"]
    assert not cmp["ok"]
    assert set(cmp["regressions"]) == {
        "gcups",
        "reads_per_sec",
        "bases_per_sec",
    }


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--smoke", action="store_true", help="small fast workload")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE_PCT,
        metavar="PCT",
        help="allowed relative throughput drop vs baseline "
        f"(default {DEFAULT_TOLERANCE_PCT:g}, env MANYMAP_BENCH_TOLERANCE)",
    )
    ap.add_argument(
        "--baseline",
        default=str(BASELINE_PATH),
        metavar="FILE",
        help="committed smoke-bench JSON to gate against",
    )
    ap.add_argument(
        "--inject-regression",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="divide fresh throughput by FACTOR first (CI self-test)",
    )
    args = ap.parse_args(argv)
    res = run_compare(
        smoke=args.smoke,
        tolerance_pct=args.tolerance,
        baseline_path=Path(args.baseline),
        inject_regression=args.inject_regression,
    )
    if not res["compare"]["ok"]:
        print(
            "ERROR: throughput regression vs baseline: "
            + ", ".join(res["compare"]["regressions"]),
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
