"""Memory-mapped vs buffered index loading, measured (§4.4.2).

The paper: "With memory-mapped I/O, the index loading step of manymap
is two times faster than that of minimap2 on KNL." The OS-level
mechanism is directly measurable here: mapping returns in microseconds
regardless of file size (pages fault in on demand), while the buffered
loader pays the full read+copy up front. We build a real multi-megabyte
index on disk and time both loaders.
"""

import numpy as np
import pytest

from _common import emit, ratio
from repro.eval.report import render_table
from repro.index.index import build_index
from repro.index.store import index_file_size, load_index, save_index
from repro.runtime.mmio import load_bytes_buffered, load_bytes_mmap
from repro.seq.genome import GenomeSpec, generate_genome
from repro.utils.fmt import human_bytes
from repro.utils.timers import timed


@pytest.fixture(scope="module")
def big_index_path(tmp_path_factory):
    genome = generate_genome(GenomeSpec(length=2_000_000, chromosomes=4), seed=55)
    idx = build_index(genome, k=15, w=5)  # dense: a bigger file
    path = tmp_path_factory.mktemp("mmio") / "big.mmi"
    save_index(idx, path)
    return path


def test_mmio_index_loading(benchmark, big_index_path):
    size = index_file_size(big_index_path)

    def both():
        with timed() as t_buf:
            load_index(big_index_path, mode="buffered")
        with timed() as t_map:
            load_index(big_index_path, mode="mmap")
        return t_buf.elapsed, t_map.elapsed

    both()  # warm the page cache so the comparison isolates the copy cost
    t_buf, t_map = benchmark.pedantic(both, rounds=1, iterations=1)
    text = render_table(
        ["loader", "seconds", "speedup"],
        [
            ["buffered (np.fromfile)", f"{t_buf:.4f}", "1.0x"],
            ["memory-mapped (np.memmap)", f"{t_map:.4f}", f"{ratio(t_buf, t_map):.0f}x"],
        ],
        title=f"Index loading, {human_bytes(size)} file (measured)",
    )
    emit("mmio_index_loading", text)
    # The mmap call must be dramatically cheaper than the full read:
    # the paper's 2x KNL speedup is the conservative end of this effect.
    assert t_map < t_buf / 2

    # And both must answer queries identically.
    a = load_index(big_index_path, mode="buffered")
    b = load_index(big_index_path, mode="mmap")
    v = int(a.keys[a.n_keys // 3])
    assert (a.lookup(v)[1] == b.lookup(v)[1]).all()


def test_mmio_raw_bytes(benchmark, big_index_path):
    """The raw loader primitives show the same shape."""
    def both():
        _, t_buf = load_bytes_buffered(big_index_path)
        _, t_map = load_bytes_mmap(big_index_path)
        return t_buf, t_map

    t_buf, t_map = benchmark.pedantic(both, rounds=1, iterations=1)
    assert t_map < t_buf
