"""Real wall-clock micro benchmarks of the DP kernels (pytest-benchmark).

The paper's layout claim, measured for real under NumPy: the manymap
layout needs no per-diagonal shifted copies of v/x, so it runs
measurably faster than the mm2 layout at identical results. Absolute
GCUPS are CPython-scale; the *ratio* is the reproducible quantity.
"""

import pytest

from repro.align.ablation import align_swap
from repro.align.diff_scalar import align_diff_scalar
from repro.align.dp_reference import align_reference
from repro.align.manymap_kernel import align_manymap
from repro.align.mm2_kernel import align_mm2
from repro.align.scoring import Scoring

SCORING = Scoring()


@pytest.mark.benchmark(group="score-1k")
class TestScoreKernels1k:
    def test_manymap_score(self, benchmark, kernel_pair_1k):
        t, q = kernel_pair_1k
        res = benchmark(align_manymap, t, q, SCORING, mode="extend")
        assert res.score > 0

    def test_mm2_score(self, benchmark, kernel_pair_1k):
        t, q = kernel_pair_1k
        res = benchmark(align_mm2, t, q, SCORING, mode="extend")
        assert res.score > 0

    def test_swap_score(self, benchmark, kernel_pair_1k):
        t, q = kernel_pair_1k
        res = benchmark(align_swap, t, q, SCORING, mode="extend")
        assert res.score > 0

    def test_reference_score(self, benchmark, kernel_pair_1k):
        t, q = kernel_pair_1k
        res = benchmark(align_reference, t, q, SCORING, mode="extend")
        assert res.score > 0


@pytest.mark.benchmark(group="path-1k")
class TestPathKernels1k:
    def test_manymap_path(self, benchmark, kernel_pair_1k):
        t, q = kernel_pair_1k
        res = benchmark(align_manymap, t, q, SCORING, mode="global", path=True)
        assert res.cigar is not None

    def test_mm2_path(self, benchmark, kernel_pair_1k):
        t, q = kernel_pair_1k
        res = benchmark(align_mm2, t, q, SCORING, mode="global", path=True)
        assert res.cigar is not None


@pytest.mark.benchmark(group="score-2k")
class TestScoreKernels2k:
    def test_manymap_2k(self, benchmark, kernel_pair_2k):
        t, q = kernel_pair_2k
        benchmark(align_manymap, t, q, SCORING, mode="extend")

    def test_mm2_2k(self, benchmark, kernel_pair_2k):
        t, q = kernel_pair_2k
        benchmark(align_mm2, t, q, SCORING, mode="extend")


@pytest.mark.benchmark(group="scalar-256")
class TestScalar:
    def test_scalar_score_256(self, benchmark):
        from _common import dp_pair

        t, q = dp_pair(256)
        benchmark(align_diff_scalar, t, q, SCORING, mode="extend")
