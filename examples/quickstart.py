#!/usr/bin/env python
"""Quickstart: simulate a genome + reads, align, print PAF.

The 60-second tour of the public API:

1. generate a synthetic reference genome,
2. simulate PacBio-like long reads from it (with ground truth),
3. build an Aligner with the manymap DP engine,
4. map the reads and print PAF records,
5. check accuracy against the simulator's ground truth.

Run:  python examples/quickstart.py
"""

from repro import (
    Aligner,
    GenomeSpec,
    evaluate_accuracy,
    generate_genome,
    simulate_reads,
    to_paf,
)


def main() -> None:
    # 1. A 200 kbp single-chromosome reference with mild repeat content.
    genome = generate_genome(GenomeSpec(length=200_000, chromosomes=1), seed=7)
    print(f"reference: {genome.names[0]}, {genome.total_length:,} bp")

    # 2. Thirty PacBio CLR-like reads (~13% error, insertion-heavy).
    reads = simulate_reads(genome, 30, platform="pacbio", seed=8)
    print(f"simulated {len(reads)} reads, {reads.total_bases:,} bases\n")

    # 3. The aligner: minimizer index + chaining + manymap DP kernel.
    aligner = Aligner(genome, preset="map-pb", engine="manymap")

    # 4. Map and print.
    results = []
    for read in reads:
        alns = aligner.map_read(read, with_cigar=False)
        results.append(alns)
        for aln in alns:
            print(to_paf(aln))

    # 5. Score against ground truth (the paper's Table 5 metric).
    report = evaluate_accuracy(list(reads), results)
    print(f"\n{report.render()}")


if __name__ == "__main__":
    main()
