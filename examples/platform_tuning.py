#!/usr/bin/env python
"""Choosing a kernel/platform: measured NumPy GCUPS + modeled hardware.

Reproduces, in miniature, the decision the paper's §5.2 supports:
which vector width, memory mode, and processor should run the
base-level alignment step? Prints

* measured wall-clock GCUPS of the mm2-layout and manymap-layout NumPy
  kernels (the layout effect is real even under NumPy), and
* modeled GCUPS for all three processors from the machine models.

Run:  python examples/platform_tuning.py
"""

import time

import numpy as np

from repro import XEON_GOLD_5115, XEON_PHI_7210, TESLA_V100, Scoring
from repro.align.manymap_kernel import align_manymap
from repro.align.mm2_kernel import align_mm2
from repro.eval.report import render_table
from repro.machine.isa import AVX2, AVX512BW, SSE2
from repro.seq.alphabet import random_codes
from repro.seq.mutate import MutationSpec, mutate_codes


def measured_gcups(fn, length: int, repeats: int = 2) -> float:
    target = random_codes(length, seed=1)
    query, _ = mutate_codes(
        target, MutationSpec(sub_rate=0.05, ins_rate=0.04, del_rate=0.04), seed=2
    )
    t0 = time.perf_counter()
    cells = 0
    for _ in range(repeats):
        res = fn(target, query, Scoring(), mode="extend")
        cells += res.cells
    return cells / (time.perf_counter() - t0) / 1e9


def main() -> None:
    length = 2000
    print("== measured (NumPy kernels, this machine) ==")
    m_mm2 = measured_gcups(align_mm2, length)
    m_many = measured_gcups(align_manymap, length)
    print(
        render_table(
            ["kernel", "GCUPS", "speedup"],
            [
                ["mm2 layout (shifted)", m_mm2, 1.0],
                ["manymap layout (in-place)", m_many, m_many / m_mm2],
            ],
        )
    )

    print("\n== modeled (paper hardware, score-only, len=4k) ==")
    cpu, knl, gpu = XEON_GOLD_5115, XEON_PHI_7210, TESLA_V100
    rows = [
        ["CPU / SSE2", cpu.micro_gcups("mm2", SSE2, "score", 4000),
         cpu.micro_gcups("manymap", SSE2, "score", 4000)],
        ["CPU / AVX2", cpu.micro_gcups("mm2", AVX2, "score", 4000),
         cpu.micro_gcups("manymap", AVX2, "score", 4000)],
        ["CPU / AVX-512BW", cpu.micro_gcups("mm2", AVX512BW, "score", 4000),
         cpu.micro_gcups("manymap", AVX512BW, "score", 4000)],
        ["KNL (AVX2, MCDRAM)", knl.micro_gcups("mm2", "score", 4000),
         knl.micro_gcups("manymap", "score", 4000)],
        ["GPU (V100, 128 streams)", gpu.micro_gcups("mm2", "score", 4000),
         gpu.micro_gcups("manymap", "score", 4000)],
    ]
    table = [
        [name, mm2, many, many / mm2] for name, mm2, many in rows
    ]
    print(render_table(["platform", "minimap2", "manymap", "speedup"], table))

    best = max(table, key=lambda r: r[2])
    print(f"\nbest modeled platform for the DP step: {best[0]} ({best[2]:.0f} GCUPS)")
    print("(the paper's overall conclusion: the high-end server CPU still wins")
    print(" end-to-end because of serial stages — see bench_fig11_breakdown)")


if __name__ == "__main__":
    main()
