#!/usr/bin/env python
"""Mini aligner shootout: accuracy and work across seven tools.

A scaled-down interactive version of the paper's Table 5: runs
manymap, minimap2(mm2-layout), minialign, Kart, BLASR, NGMLR, and
BWA-MEM over the same simulated PacBio dataset and reports error rate,
index size, wall time, and DP work.

Run:  python examples/aligner_shootout.py [n_reads]
"""

import sys
import time

from repro import GenomeSpec, generate_genome
from repro.baselines import BASELINES, make_baseline
from repro.eval.accuracy import evaluate_accuracy
from repro.eval.report import render_table
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator
from repro.utils.fmt import human_bytes


def main(n_reads: int = 12) -> None:
    genome = generate_genome(
        GenomeSpec(length=150_000, chromosomes=1, repeat_fraction=0.15), seed=3
    )
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(mean=1500.0, sigma=0.3, max_length=3000)
    reads = sim.simulate(n_reads, seed=4)
    print(f"dataset: {len(reads)} PacBio reads, {reads.total_bases:,} bases\n")

    rows = []
    for name in BASELINES:
        tool = make_baseline(name)
        t0 = time.perf_counter()
        tool.build(genome)
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        results = tool.map_all(reads)
        t_map = time.perf_counter() - t0
        report = evaluate_accuracy(list(reads), results)
        rows.append(
            [
                name,
                f"{100 * report.error_rate:.2f}%",
                f"{100 * report.sensitivity:.0f}%",
                human_bytes(tool.resources.index_bytes),
                f"{t_build:.2f}s",
                f"{t_map:.2f}s",
                f"{getattr(tool, 'work_cells', 0):,}",
            ]
        )
    print(
        render_table(
            ["tool", "error", "sens", "index", "build", "map", "DP cells"],
            rows,
            title="Aligner comparison (scaled-down Table 5)",
        )
    )
    print(
        "\nNote: wall times compare Python implementations; the paper's "
        "Table 5 ordering of the real C/C++ tools is reproduced by the "
        "DP-work and accuracy columns (see benchmarks/bench_table5_aligners.py)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
