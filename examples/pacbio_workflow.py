#!/usr/bin/env python
"""PacBio mapping workflow with on-disk index and SAM output.

Mirrors a production run of the paper's macro benchmark (§5.1.3):

1. write the reference to FASTA and build a persistent ``.mmi`` index,
2. reload the index via memory-mapped I/O (manymap's §4.4.2 path),
3. map a PacBio-profile dataset through the instrumented BatchDriver,
4. emit SAM, and print the stage breakdown (the paper's Table 2 rows).

Run:  python examples/pacbio_workflow.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    BatchDriver,
    GenomeSpec,
    build_index,
    generate_genome,
    sam_header,
    save_index,
    simulate_reads,
    to_sam,
)
from repro.core.presets import get_preset
from repro.seq.fasta import write_fasta, write_fastq


def main(workdir: Path) -> None:
    preset = get_preset("map-pb")

    # --- reference + index on disk -------------------------------------
    genome = generate_genome(
        GenomeSpec(length=300_000, chromosomes=2, repeat_fraction=0.12), seed=17
    )
    ref_fa = workdir / "ref.fa"
    write_fasta(ref_fa, genome.chromosomes)

    index = build_index(genome, k=preset.k, w=preset.w)
    index_path = workdir / "ref.mmi"
    n_bytes = save_index(index, index_path)
    print(f"index: {index.n_minimizers:,} minimizers, {n_bytes:,} bytes on disk")

    # --- reads ----------------------------------------------------------
    reads = simulate_reads(genome, 25, platform="pacbio", seed=18)
    reads_fq = workdir / "reads.fq"
    write_fastq(reads_fq, reads)

    # --- the instrumented pipeline, mmap index load ----------------------
    driver = BatchDriver.from_index_file(
        genome, index_path, load_mode="mmap", preset="map-pb", engine="manymap",
        label="PacBio workflow",
    )
    loaded = driver.load_reads(reads_fq)
    sam_path = workdir / "out.sam"
    results = driver.run(loaded)

    with open(sam_path, "w") as out:
        print(sam_header(index.names, index.lengths), file=out)
        for read, alns in zip(loaded, results):
            for aln in alns:
                print(to_sam(aln, read), file=out)

    print(f"mapped {driver.n_mapped(results)}/{len(loaded)} reads -> {sam_path}\n")
    print(driver.profile.render())


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(Path(sys.argv[1]))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            main(Path(tmp))
