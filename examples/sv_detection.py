#!/usr/bin/env python
"""Structural-variant evidence from long-read alignments.

The downstream task that motivates accurate long-read alignment
(NGMLR's raison d'être in the paper's Table 5): simulate a donor genome
carrying known SVs, sequence it with noisy long reads, map them back to
the REFERENCE, and recover the variants from alignment evidence —
deletion gaps inside CIGARs, split alignments, and strand flips.

Run:  python examples/sv_detection.py
"""

from repro import Aligner, GenomeSpec, generate_genome
from repro.eval.report import render_table
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator
from repro.sim.variants import SvSpec, apply_svs
from repro.seq.records import SeqRecord
from repro.seq.alphabet import revcomp_codes
from repro.sim.errors import PACBIO_CLR, apply_errors
from repro.utils.rng import as_rng


def simulate_donor_reads(donor, n, seed):
    rng = as_rng(seed)
    lengths = LengthModel(mean=6000.0, sigma=0.35, max_length=12000).sample(n, rng)
    reads = []
    chrom = donor.chromosomes[0]
    for i, ln in enumerate(lengths):
        ln = int(min(ln, len(chrom)))
        start = int(rng.integers(0, len(chrom) - ln + 1))
        template = chrom.codes[start : start + ln]
        if rng.random() < 0.5:
            template = revcomp_codes(template)
        codes, _ = apply_errors(template, PACBIO_CLR, rng)
        reads.append(SeqRecord(f"don{i:04d}", codes))
    return reads


def collect_evidence(aligner, reads, min_gap=300):
    """Deletion breakpoints (from CIGAR D-runs and split alignments)."""
    breakpoints = []  # (chrom, ref_pos, gap_length)
    for read in reads:
        alns = aligner.map_read(read)
        primaries = sorted(
            (a for a in alns if a.is_primary), key=lambda a: a.tstart
        )
        # 1. big deletion runs inside one alignment
        for a in primaries:
            tpos = a.tstart
            for n, op in a.cigar.ops:
                if op == "D" and n >= min_gap:
                    breakpoints.append((a.tname, tpos, n))
                if op in "MD":
                    tpos += n
        # 2. split alignments with a clean target gap
        for left, right in zip(primaries, primaries[1:]):
            if left.tname == right.tname:
                gap = right.tstart - left.tend
                if gap >= min_gap:
                    breakpoints.append((left.tname, left.tend, gap))
    return breakpoints


def cluster_breakpoints(breakpoints, tolerance=600):
    """Greedy position clustering into candidate calls."""
    calls = []
    for chrom, pos, gap in sorted(breakpoints):
        for call in calls:
            if call["chrom"] == chrom and abs(call["pos"] - pos) <= tolerance:
                call["support"] += 1
                call["pos"] = (call["pos"] + pos) // 2
                break
        else:
            calls.append({"chrom": chrom, "pos": pos, "gap": gap, "support": 1})
    return calls


def main() -> None:
    reference = generate_genome(GenomeSpec(length=250_000, chromosomes=1), seed=9)
    donor, events = apply_svs(
        reference,
        SvSpec(n_del=3, n_ins=0, n_inv=0, n_dup=0, min_size=800, max_size=3000),
        seed=10,
    )
    truth = {e for e in events if e.kind == "DEL"}
    print("planted deletions:")
    for ev in sorted(truth, key=lambda e: e.start):
        print(f"  {ev.chrom}:{ev.start:,}-{ev.end:,}  ({ev.length:,} bp)")

    reads = simulate_donor_reads(donor, 150, seed=11)
    aligner = Aligner(reference, preset="map-pb", engine="manymap")
    breakpoints = collect_evidence(aligner, reads)
    calls = [c for c in cluster_breakpoints(breakpoints) if c["support"] >= 2]
    calls.sort(key=lambda c: c["pos"])
    rows = []
    for call in calls:
        hit = next(
            (e for e in truth
             if e.chrom == call["chrom"] and abs(e.start - call["pos"]) < 1000),
            None,
        )
        rows.append([
            f"{call['chrom']}:{call['pos']:,}", call["support"],
            "TRUE" if hit else "false positive",
        ])
    print()
    print(render_table(["call locus", "read support", "verdict"], rows,
                       title="deletion calls (>=2 supporting reads)"))
    found = sum(1 for r in rows if r[2] == "TRUE")
    print(f"\nrecovered {found} loci covering {len(truth)} planted deletions")


if __name__ == "__main__":
    main()
