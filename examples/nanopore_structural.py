#!/usr/bin/env python
"""Nanopore reads over a structurally rearranged genome.

The paper's real dataset is Nanopore human sequencing with a heavy
length tail (mean ~4 kb, max 514 kb). This example exercises that
profile on a harder scenario: the reads come from a *donor* genome that
differs from the reference by structural variants (a deletion and an
inversion), so alignments split and strand flips appear — the situation
long-read aligners exist for.

Run:  python examples/nanopore_structural.py
"""

import numpy as np

from repro import Aligner, GenomeSpec, generate_genome
from repro.seq.alphabet import revcomp_codes
from repro.seq.genome import Genome
from repro.seq.records import SeqRecord
from repro.sim.errors import NANOPORE_R9, apply_errors
from repro.sim.lengths import LengthModel
from repro.sim.variants import SvSpec, apply_svs
from repro.utils.rng import as_rng


def make_donor(reference: Genome) -> Genome:
    """Apply structural variants (deletion + inversion) via repro.sim.variants."""
    donor, events = apply_svs(
        reference,
        SvSpec(n_del=1, n_ins=0, n_inv=1, n_dup=0,
               min_size=6_000, max_size=10_000),
        seed=42,
    )
    for ev in events:
        print(f"  SV: {ev.kind} {ev.chrom}:{ev.start}-{ev.end} ({ev.length:,} bp)")
    return donor


def simulate_nanopore(donor: Genome, n: int, seed: int):
    rng = as_rng(seed)
    lengths = LengthModel(
        mean=4000.0, sigma=0.8, tail_weight=0.03, tail_alpha=1.3, max_length=60_000
    ).sample(n, rng)
    chrom = donor.chromosomes[0]
    reads = []
    for i, ln in enumerate(lengths):
        ln = int(min(ln, len(chrom)))
        start = int(rng.integers(0, len(chrom) - ln + 1))
        template = chrom.codes[start : start + ln]
        if rng.random() < 0.5:
            template = revcomp_codes(template)
        read, _ = apply_errors(template, NANOPORE_R9, rng)
        reads.append(SeqRecord(f"ont{i:05d}", read, meta={"donor_start": start}))
    return reads


def main() -> None:
    reference = generate_genome(GenomeSpec(length=220_000), seed=5)
    donor = make_donor(reference)
    reads = simulate_nanopore(donor, 25, seed=6)
    print(
        f"donor genome: {donor.total_length:,} bp "
        f"(reference {reference.total_length:,} bp); {len(reads)} ONT reads"
    )

    aligner = Aligner(reference, preset="map-ont", engine="manymap")
    n_split = n_rev = n_mapped = 0
    for read in reads:
        alns = aligner.map_read(read, with_cigar=False)
        if not alns:
            continue
        n_mapped += 1
        primaries = [a for a in alns if a.is_primary]
        if len(primaries) > 1:
            n_split += 1  # read spans an SV breakpoint -> split alignment
        if any(a.strand < 0 for a in primaries):
            n_rev += 1
        spans = ", ".join(
            f"{a.tname}:{a.tstart}-{a.tend}({'+' if a.strand > 0 else '-'})"
            for a in primaries
        )
        print(f"{read.name}  len={len(read):>6,}  {spans}")

    print(
        f"\nmapped {n_mapped}/{len(reads)}; "
        f"{n_split} split alignments (SV evidence), {n_rev} with reverse strand"
    )


if __name__ == "__main__":
    main()
